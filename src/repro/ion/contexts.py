"""The I/O Performance Issue Context knowledge base.

This is ION's replacement for Drishti's fixed numeric triggers: one
context per issue type that *describes the nature of the issue* and
names the key metrics that reveal it, referencing system facts (Lustre
stripe size, RPC size) rather than expert-tuned percentage thresholds.
Each context also records which Darshan modules its analysis needs, so
the prompt builder can filter file descriptions per issue (the paper's
"predefined mapping of necessary modules for each issue type").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ion.issues import IssueType


@dataclass(frozen=True)
class IssueContext:
    """Domain knowledge for diagnosing one issue type."""

    issue: IssueType
    text: str
    required_modules: tuple[str, ...]

    @property
    def title(self) -> str:
        return self.issue.title


_CONTEXTS: dict[IssueType, IssueContext] = {}


def _register(issue: IssueType, modules: tuple[str, ...], text: str) -> None:
    _CONTEXTS[issue] = IssueContext(issue=issue, text=text.strip(), required_modules=modules)


_register(
    IssueType.SMALL_IO,
    ("POSIX", "LUSTRE"),
    """
Parallel file systems move data in large remote procedure calls (RPCs);
on Lustre the client RPC size is a system setting (typically 4 MiB) and
the stripe size sets the unit of server-side locality. Requests much
smaller than the RPC size underutilize each RPC, inflate per-operation
overhead, and multiply server round trips. HOWEVER, small requests are
not always harmful: when a rank issues them CONSECUTIVELY (each request
starting exactly where the previous one ended), the client-side page
cache and request aggregation can coalesce them into full-size RPCs
before they reach the servers, mitigating most of the inefficiency.
Small requests that are non-consecutive (strided or random) cannot be
aggregated and realize the full penalty.

Key metrics: the access-size histograms (POSIX_SIZE_READ_* and
POSIX_SIZE_WRITE_*) relative to the system RPC size and stripe size;
POSIX_CONSEC_READS / POSIX_CONSEC_WRITES and POSIX_SEQ_READS /
POSIX_SEQ_WRITES relative to POSIX_READS / POSIX_WRITES to judge
aggregatability; the most common access sizes (POSIX_ACCESS*_ACCESS);
and the share of small requests per file to locate the worst offender.
Distinguish requests below the stripe size (severe when unaggregatable)
from requests between the stripe size and the RPC size (milder).
""",
)

_register(
    IssueType.MISALIGNED_IO,
    ("POSIX", "LUSTRE"),
    """
Lustre stripes every file over object storage targets (OSTs) in
stripe_size units. A request whose file offset is not a multiple of
the file alignment (on Lustre, the stripe size reported in
LUSTRE_STRIPE_SIZE) may straddle a stripe boundary, touching two OSTs,
acquiring two extent locks, and splitting into extra RPCs. Pervasive
misalignment amplifies lock traffic and server load, and commonly
arises from odd-sized file headers (e.g. HDF5 superblocks or netCDF
headers) shifting otherwise regular access patterns. Memory-buffer
misalignment (POSIX_MEM_NOT_ALIGNED) additionally forces internal
copies, a smaller but measurable cost.

Key metrics: POSIX_FILE_NOT_ALIGNED relative to total operations
(POSIX_READS + POSIX_WRITES); POSIX_FILE_ALIGNMENT and the per-file
LUSTRE_STRIPE_SIZE to confirm what alignment means on this system;
POSIX_MEM_NOT_ALIGNED for buffer alignment; and per-file breakdowns to
identify whether misalignment is global or confined to one dataset.
""",
)

_register(
    IssueType.RANDOM_ACCESS,
    ("POSIX", "LUSTRE"),
    """
Access patterns matter as much as request sizes. An access is
CONSECUTIVE when it begins exactly where the previous access of the
same rank on the same file ended, SEQUENTIAL when it begins at or past
the previous end (possibly leaving a forward gap, i.e. strided), and
RANDOM when it jumps backward. Random and strided patterns defeat
client aggregation and server read-ahead, and on striped storage they
scatter requests across OSTs and extent locks. The DXT trace (per-
operation offsets, lengths and timestamps) gives the exact
classification; without DXT, POSIX_SEQ_* and POSIX_CONSEC_* counters
bound it. IMPORTANT: judge impact in context — a small population of
random operations, a low per-rank random-operation count, or a small
fraction of total bytes moved through random accesses means the
pattern does not affect the application's overall I/O performance even
though it is present.

Key metrics: per-rank, per-file ordered DXT offsets; backward-jump
fraction per direction (reads vs writes); bytes moved by random
operations relative to total bytes; random operations per rank.
""",
)

_register(
    IssueType.SHARED_FILE_CONTENTION,
    ("POSIX", "LUSTRE"),
    """
When multiple ranks write a single shared file, Lustre must serialize
conflicting access within each stripe through distributed extent
locks; ranks that touch the SAME stripe at the SAME time trigger lock
revocations and OST-level serialization (lock ping-pong). Shared-file
access by itself is NOT a problem: if every rank works in a disjoint
set of stripes (e.g. large per-rank blocks aligned to the stripe
size), no conflicts arise and shared-file I/O performs like
file-per-process. Sharing only the single boundary stripe between
adjacent ranks (a by-product of unaligned decompositions) is a mild,
localized effect; many ranks interleaving within the same stripes
continuously is severe.

Key metrics: which files are accessed by more than one rank (per-rank
records in POSIX data); mapping of DXT offsets to stripe indices via
LUSTRE_STRIPE_SIZE; the number of distinct ranks per stripe; temporal
overlap of different ranks' accesses to the same stripe; the fraction
of operations that fall in rank-shared stripes.
""",
)

_register(
    IssueType.LOAD_IMBALANCE,
    ("POSIX",),
    """
Parallel I/O performs best when ranks move comparable amounts of data
in comparable time; a few overloaded ranks stall everyone at the next
synchronization point. Imbalance shows up as a skewed distribution of
per-rank transferred bytes, operation counts, or per-rank I/O time.
Interpretation requires care: a single overloaded rank (typically
rank 0) usually indicates a serialization bug (e.g. one rank writing
headers or fill values for everyone), while a REGULAR SUBSET of ranks
doing nearly all filesystem operations (for instance a number of ranks
matching the collective-buffering aggregator count) is usually an
intentional aggregation topology inherent to the algorithm — worth
reporting, but not necessarily a defect.

Key metrics: per-rank sums of POSIX_BYTES_READ + POSIX_BYTES_WRITTEN
and of POSIX_F_READ_TIME + POSIX_F_WRITE_TIME + POSIX_F_META_TIME; the
imbalance ratio (max - mean) / max; how many ranks sit more than one
standard deviation above the mean and what share of operations they
carry; per-file variance counters (POSIX_F_VARIANCE_RANK_BYTES).
""",
)

_register(
    IssueType.METADATA_LOAD,
    ("POSIX", "STDIO"),
    """
Every open, stat, seek and sync is a round trip to the metadata server
(MDS), a single shared resource; applications that repeatedly reopen
many small files, stat before every access, or sync aggressively can
bottleneck on metadata while moving almost no data. The signature is a
high ratio of metadata operations to data operations, metadata time
rivaling or exceeding data-transfer time, and open counts far above
the number of distinct files (open/close churn).

Key metrics: POSIX_OPENS, POSIX_STATS, POSIX_SEEKS, POSIX_FSYNCS
against POSIX_READS + POSIX_WRITES; POSIX_F_META_TIME against
POSIX_F_READ_TIME + POSIX_F_WRITE_TIME; the number of distinct files;
opens per file.
""",
)

_register(
    IssueType.NO_MPIIO,
    ("POSIX", "MPI-IO"),
    """
On HPC systems, multi-rank applications that perform their I/O through
raw POSIX calls forgo every optimization the MPI-IO layer provides:
collective buffering (two-phase I/O), data sieving, request
aggregation across ranks, and filesystem-specific hints. The presence
of POSIX activity from several ranks with no MPI-IO records at all
indicates the application (or the I/O library configuration) bypasses
MPI-IO; moving to MPI-IO collective or non-blocking operations is the
standard recommendation, especially for shared files and small or
strided requests.

Key metrics: number of ranks issuing POSIX reads/writes; presence and
operation counts of MPI-IO records (MPIIO_INDEP_*, MPIIO_COLL_*) for
the same job.
""",
)

_register(
    IssueType.NO_COLLECTIVE,
    ("MPI-IO",),
    """
Applications already using MPI-IO may still issue only INDEPENDENT
operations (MPIIO_INDEP_READS / MPIIO_INDEP_WRITES), leaving collective
buffering unused. Collective operations let a few aggregator ranks
merge everyone's requests into large, aligned, stripe-friendly
transfers — precisely the cure for many small or misaligned per-rank
accesses on shared files. Independent-only MPI-IO with many ranks on a
shared file is therefore a missed optimization; non-blocking
operations (MPIIO_NB_*) can additionally overlap I/O with computation.

Key metrics: MPIIO_COLL_READS + MPIIO_COLL_WRITES versus
MPIIO_INDEP_READS + MPIIO_INDEP_WRITES + MPIIO_NB_*; number of ranks;
whether files are shared across ranks.
""",
)

_register(
    IssueType.RANK_ZERO_BOTTLENECK,
    ("POSIX",),
    """
A common serialization anti-pattern funnels I/O work through rank 0:
writing file headers, pre-filling datasets with fill values, or
gathering and writing everyone's data. The job then runs at the speed
of one rank. The signature is rank 0 moving far more bytes, issuing
far more operations, or spending far more I/O time than the average of
all other ranks — often orders of magnitude more.

Key metrics: rank 0's POSIX_BYTES_WRITTEN + POSIX_BYTES_READ and
summed I/O time versus the mean over the other ranks; rank 0's share
of total operations; which files rank 0 dominates.
""",
)


def context_for(issue: IssueType) -> IssueContext:
    """The knowledge-base entry for one issue type."""
    return _CONTEXTS[issue]


def all_contexts() -> list[IssueContext]:
    """Every context, in taxonomy order."""
    return [_CONTEXTS[issue] for issue in IssueType]


def default_issue_order() -> list[IssueType]:
    """The order in which ION analyzes issues (taxonomy order)."""
    return list(IssueType)
