"""Text rendering of diagnosis reports (the paper's front-end modals).

The web front end in the paper shows one modal per issue — diagnosis
steps, the generated analysis code, and the conclusion — plus the
global summary.  This module renders the same structure as terminal
text, so the CLI and the examples produce output comparable to
Figures 2 and 3.
"""

from __future__ import annotations

import io

from repro.ion.issues import Diagnosis, DiagnosisReport, Severity

_SEVERITY_BADGE = {
    Severity.OK: "[ ok ]",
    Severity.INFO: "[info]",
    Severity.WARNING: "[WARN]",
    Severity.CRITICAL: "[CRIT]",
}


def render_diagnosis(diagnosis: Diagnosis, show_code: bool = False) -> str:
    """Render one issue modal."""
    out = io.StringIO()
    badge = _SEVERITY_BADGE[diagnosis.severity]
    out.write(f"{badge} {diagnosis.issue.title}\n")
    if diagnosis.steps:
        out.write("  Diagnosis steps:\n")
        for number, step in enumerate(diagnosis.steps, start=1):
            out.write(f"    {number}. {step}\n")
    if show_code and diagnosis.code:
        out.write("  Analysis code:\n")
        for line in diagnosis.code.splitlines():
            out.write(f"    | {line}\n")
    out.write(f"  Conclusion: {diagnosis.conclusion}\n")
    if diagnosis.mitigations:
        notes = "; ".join(note.title for note in diagnosis.mitigations)
        out.write(f"  Mitigating context: {notes}\n")
    if diagnosis.degraded:
        source = {
            "drishti": "Drishti heuristic fallback",
            "none": "no fallback available",
        }.get(diagnosis.fallback_source, diagnosis.fallback_source)
        out.write(f"  DEGRADED ({source}): {diagnosis.degraded_reason}\n")
    return out.getvalue()


def render_report(report: DiagnosisReport, show_code: bool = False) -> str:
    """Render the full report: every modal plus the global summary."""
    out = io.StringIO()
    out.write("=" * 72 + "\n")
    out.write(f"ION diagnosis report — {report.trace_name}\n")
    out.write("=" * 72 + "\n\n")
    flagged = [d for d in report.diagnoses if d.detected]
    informational = [d for d in report.diagnoses if d.observed and not d.detected]
    clean = [d for d in report.diagnoses if not d.observed]
    for group, label in (
        (flagged, "Issues affecting performance"),
        (informational, "Patterns present but mitigated"),
        (clean, "Examined and unproblematic"),
    ):
        if not group:
            continue
        out.write(f"--- {label} ---\n")
        for diagnosis in group:
            out.write(render_diagnosis(diagnosis, show_code=show_code))
            out.write("\n")
    if report.summary:
        out.write("--- Global summary ---\n")
        out.write(report.summary.strip() + "\n")
    if report.health is not None:
        out.write("\n--- Pipeline health ---\n")
        out.write(render_health(report.health))
    return out.getvalue()


def render_health(health) -> str:
    """Render a report's :class:`~repro.ion.issues.ReportHealth` block."""
    out = io.StringIO()
    out.write(
        f"queries: {health.queries} "
        f"(attempts {health.attempts}, retries {health.retries})\n"
    )
    out.write(
        f"degraded: {health.degraded} "
        f"(drishti fallback: {health.fallbacks})\n"
    )
    trips = (
        f" (tripped {health.breaker_trips}x this run)"
        if health.breaker_trips
        else ""
    )
    out.write(f"circuit breaker: {health.breaker_state}{trips}\n")
    for note in health.notes:
        out.write(f"  ! {note}\n")
    return out.getvalue()
