"""Degraded-mode diagnosis: deterministic fallbacks for a failed LLM path.

When a per-issue LLM query exhausts its retry budget (or the circuit
breaker is open), the analyzer does not abort the report — it answers
that issue from the fully deterministic Drishti trigger engine
(:mod:`repro.drishti`), which shares ION's issue taxonomy.  The
fallback is honest about its provenance: every substituted diagnosis
is marked ``degraded`` with the failure reason and the fallback
source, and the report's health section counts it.

The same module supplies the degraded global summary used when the
summarization query itself fails.
"""

from __future__ import annotations

import threading

from repro.darshan.log import DarshanLog
from repro.drishti.analyzer import DrishtiAnalyzer
from repro.drishti.insights import DrishtiReport, Level
from repro.ion.issues import Diagnosis, IssueType, Severity

#: Drishti severity levels mapped onto ION's severity scale.
_LEVEL_TO_SEVERITY = {
    Level.HIGH: Severity.CRITICAL,
    Level.WARN: Severity.WARNING,
    Level.INFO: Severity.INFO,
    Level.OK: Severity.OK,
}

_SEVERITY_RANK = {
    Severity.OK: 0,
    Severity.INFO: 1,
    Severity.WARNING: 2,
    Severity.CRITICAL: 3,
}


class DrishtiFallback:
    """Per-report oracle answering issues the LLM path could not.

    The Drishti report is computed lazily (only if a query actually
    degrades) and exactly once per trace, however many of the
    analyzer's prompt threads ask for it concurrently.
    """

    def __init__(self, log: DarshanLog | None, trace_name: str) -> None:
        self._log = log
        self._trace_name = trace_name
        self._lock = threading.Lock()
        self._report: DrishtiReport | None = None

    @property
    def available(self) -> bool:
        """Whether a heuristic fallback is possible (the log is known)."""
        return self._log is not None

    def _drishti_report(self) -> DrishtiReport:
        with self._lock:
            if self._report is None:
                self._report = DrishtiAnalyzer().analyze(
                    self._log, self._trace_name
                )
            return self._report

    def diagnosis_for(self, issue: IssueType, reason: str) -> Diagnosis:
        """A degraded diagnosis of ``issue``, heuristic when possible."""
        if not self.available:
            return Diagnosis(
                issue=issue,
                severity=Severity.OK,
                conclusion=(
                    "LLM diagnosis unavailable and no trace is attached "
                    "for a heuristic fallback; this issue was NOT examined."
                ),
                degraded=True,
                degraded_reason=reason,
                fallback_source="none",
            )
        insights = [
            insight
            for insight in self._drishti_report().insights
            if insight.issue == issue
        ]
        if not insights:
            return Diagnosis(
                issue=issue,
                severity=Severity.OK,
                conclusion=(
                    "Drishti heuristic fallback: no trigger fired for "
                    "this issue."
                ),
                degraded=True,
                degraded_reason=reason,
                fallback_source="drishti",
            )
        severity = max(
            (_LEVEL_TO_SEVERITY[insight.level] for insight in insights),
            key=_SEVERITY_RANK.__getitem__,
        )
        flagged = [
            insight
            for insight in insights
            if _LEVEL_TO_SEVERITY[insight.level] == severity
        ]
        parts = []
        for insight in flagged:
            text = insight.message
            if insight.recommendation:
                text += f" Recommendation: {insight.recommendation}"
            parts.append(text)
        return Diagnosis(
            issue=issue,
            severity=severity,
            conclusion="Drishti heuristic fallback: " + " ".join(parts),
            evidence={
                "drishti_triggers": sorted(
                    insight.code for insight in insights
                )
            },
            degraded=True,
            degraded_reason=reason,
            fallback_source="drishti",
        )


def compose_degraded_summary(
    trace_name: str, diagnoses: list[Diagnosis], reason: str
) -> str:
    """A deterministic global summary when the summarizer query fails."""
    flagged = [d for d in diagnoses if d.detected]
    mitigated = [d for d in diagnoses if d.observed and not d.detected]
    lines = [
        f"(degraded summary — LLM summarizer unavailable: {reason})",
        f"Of {len(diagnoses)} issues examined for {trace_name}, "
        f"{len(flagged)} affect performance and {len(mitigated)} are "
        "present but mitigated.",
    ]
    if flagged:
        titles = ", ".join(d.issue.title for d in flagged)
        lines.append(f"Flagged: {titles}.")
    degraded = [d for d in diagnoses if d.degraded]
    if degraded:
        lines.append(
            f"{len(degraded)} of the per-issue diagnoses above are "
            "themselves degraded-mode results; re-run when the LLM "
            "backend recovers for mitigation analysis."
        )
    return " ".join(lines)
