"""Self-contained HTML rendering of diagnosis reports.

The paper's front end (Figure 1) presents one modal per issue —
diagnosis steps, generated analysis code, and the conclusion — above a
global summary and the interactive message window.  This module emits
the static equivalent: a single HTML file with collapsible per-issue
sections, severity badges, the executed code, measured evidence, and
(optionally) the Q&A transcript of an interactive session.

No external assets, no JavaScript dependencies: the file renders
anywhere, including air-gapped HPC login nodes.
"""

from __future__ import annotations

import html
import json
from pathlib import Path

from repro.ion.interactive import IonSession
from repro.ion.issues import Diagnosis, DiagnosisReport, Severity

_SEVERITY_STYLE = {
    Severity.CRITICAL: ("CRITICAL", "#b3261e", "#fde7e9"),
    Severity.WARNING: ("WARNING", "#8a6d00", "#fff3cd"),
    Severity.INFO: ("MITIGATED", "#0b57d0", "#e8f0fe"),
    Severity.OK: ("OK", "#1e6b3a", "#e6f4ea"),
}

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem;
       color: #1f1f1f; line-height: 1.45; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #ddd; padding-bottom: .4rem; }
.badge { display: inline-block; font-size: .75rem; font-weight: 700;
         padding: .15rem .5rem; border-radius: .6rem; margin-right: .5rem; }
details.issue { border: 1px solid #ddd; border-radius: .5rem;
                margin: .6rem 0; padding: .2rem .8rem; }
details.issue summary { cursor: pointer; font-weight: 600; padding: .4rem 0; }
.conclusion { margin: .4rem 0 .6rem; }
.mitigation { color: #0b57d0; font-style: italic; }
.degraded { color: #8a6d00; font-style: italic; }
table.health { border-collapse: collapse; font-size: .85rem; }
table.health td, table.health th { border: 1px solid #ddd;
  padding: .15rem .5rem; text-align: left; }
ol.steps { margin: .2rem 0 .6rem 1.2rem; }
pre { background: #f6f8fa; border-radius: .4rem; padding: .7rem;
      overflow-x: auto; font-size: .82rem; }
.summary { background: #f2f6ff; border-radius: .5rem; padding: .8rem 1rem;
           margin-top: 1rem; white-space: pre-wrap; }
.qa { margin-top: 1rem; }
.qa .q { font-weight: 600; margin-top: .6rem; }
table.evidence { border-collapse: collapse; font-size: .82rem; }
table.evidence td, table.evidence th { border: 1px solid #ddd;
  padding: .15rem .5rem; text-align: left; }
footer { margin-top: 2rem; color: #777; font-size: .8rem; }
"""


def _badge(severity: Severity) -> str:
    label, fg, bg = _SEVERITY_STYLE[severity]
    return (
        f'<span class="badge" style="color:{fg};background:{bg}">{label}</span>'
    )


def _evidence_table(evidence: dict) -> str:
    if not evidence:
        return ""
    rows = []
    for key in sorted(evidence):
        value = evidence[key]
        if isinstance(value, (list, dict)):
            value = json.dumps(value)
        rows.append(
            f"<tr><td>{html.escape(str(key))}</td>"
            f"<td>{html.escape(str(value))}</td></tr>"
        )
    return (
        '<table class="evidence"><tr><th>metric</th><th>measured</th></tr>'
        + "".join(rows)
        + "</table>"
    )


def _issue_section(diagnosis: Diagnosis) -> str:
    parts = ['<details class="issue">']
    open_attr = " open" if diagnosis.detected else ""
    parts[0] = f'<details class="issue"{open_attr}>'
    parts.append(
        f"<summary>{_badge(diagnosis.severity)}"
        f"{html.escape(diagnosis.issue.title)}</summary>"
    )
    parts.append(
        f'<p class="conclusion">{html.escape(diagnosis.conclusion)}</p>'
    )
    if diagnosis.mitigations:
        notes = "; ".join(note.title for note in diagnosis.mitigations)
        parts.append(f'<p class="mitigation">Mitigating context: '
                     f"{html.escape(notes)}</p>")
    if diagnosis.degraded:
        source = {
            "drishti": "Drishti heuristic fallback",
            "none": "no fallback available",
        }.get(diagnosis.fallback_source, diagnosis.fallback_source)
        parts.append(
            f'<p class="degraded">DEGRADED ({html.escape(source)}): '
            f"{html.escape(diagnosis.degraded_reason)}</p>"
        )
    if diagnosis.steps:
        steps = "".join(
            f"<li>{html.escape(step)}</li>" for step in diagnosis.steps
        )
        parts.append(f"<div>Diagnosis steps:</div><ol class='steps'>{steps}</ol>")
    if diagnosis.evidence:
        parts.append("<div>Measured evidence:</div>")
        parts.append(_evidence_table(diagnosis.evidence))
    if diagnosis.code:
        parts.append("<details><summary>Analysis code</summary>")
        parts.append(f"<pre>{html.escape(diagnosis.code)}</pre></details>")
    parts.append("</details>")
    return "\n".join(parts)


def _timings_table(timings) -> str:
    """The "Pipeline timings" section from per-stage span aggregates."""
    rows = "".join(
        f"<tr><td>{html.escape(row.name)}</td><td>{row.count}</td>"
        f"<td>{row.total:.6f}</td><td>{row.mean:.6f}</td>"
        f"<td>{row.max:.6f}</td></tr>"
        for row in timings
    )
    return (
        "<h2>Pipeline timings</h2>"
        '<table class="health"><tr><th>stage</th><th>count</th>'
        "<th>total (s)</th><th>mean (s)</th><th>max (s)</th></tr>"
        + rows
        + "</table>"
    )


def render_html(
    report: DiagnosisReport,
    session: IonSession | None = None,
    timings=None,
) -> str:
    """Render a report (and optional Q&A history) as one HTML document.

    ``timings`` (optional) is a list of per-stage
    :class:`~repro.obs.summary.StageRow` aggregates recorded by a live
    tracer; when omitted the document is byte-identical to pre-tracing
    output.
    """
    sections = []
    for group, title in (
        ([d for d in report.diagnoses if d.detected],
         "Issues affecting performance"),
        ([d for d in report.diagnoses if d.observed and not d.detected],
         "Patterns present but mitigated"),
        ([d for d in report.diagnoses if not d.observed],
         "Examined and unproblematic"),
    ):
        if not group:
            continue
        sections.append(f"<h2>{html.escape(title)}</h2>")
        sections.extend(_issue_section(diagnosis) for diagnosis in group)
    if report.summary:
        sections.append("<h2>Global summary</h2>")
        sections.append(f'<div class="summary">{html.escape(report.summary)}</div>')
    if report.health is not None:
        health = report.health
        trips = (
            f" (tripped {health.breaker_trips}x this run)"
            if health.breaker_trips
            else ""
        )
        rows = [
            ("queries", str(health.queries)),
            ("attempts", str(health.attempts)),
            ("retries", str(health.retries)),
            ("degraded", str(health.degraded)),
            ("drishti fallbacks", str(health.fallbacks)),
            ("circuit breaker", f"{health.breaker_state}{trips}"),
        ]
        cells = "".join(
            f"<tr><td>{html.escape(key)}</td>"
            f"<td>{html.escape(value)}</td></tr>"
            for key, value in rows
        )
        sections.append("<h2>Pipeline health</h2>")
        sections.append(
            '<table class="health"><tr><th>metric</th><th>value</th></tr>'
            + cells
            + "</table>"
        )
        if health.notes:
            notes = "".join(
                f"<li>{html.escape(note)}</li>" for note in health.notes
            )
            sections.append(f"<ul>{notes}</ul>")
    if timings:
        sections.append(_timings_table(timings))
    if session is not None and session.history:
        sections.append('<h2>Interactive session</h2><div class="qa">')
        for exchange in session.history:
            sections.append(
                f'<div class="q">Q: {html.escape(exchange.question)}</div>'
            )
            sections.append(f"<div>A: {html.escape(exchange.answer)}</div>")
        sections.append("</div>")
    body = "\n".join(sections)
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>ION diagnosis — {html.escape(report.trace_name)}</title>
<style>{_CSS}</style>
</head>
<body>
<h1>ION diagnosis report — {html.escape(report.trace_name)}</h1>
{body}
<footer>Generated by the ION reproduction (HotStorage 2024).</footer>
</body>
</html>
"""


def write_html(
    report: DiagnosisReport,
    path: str | Path,
    session: IonSession | None = None,
    timings=None,
) -> Path:
    """Render and write the HTML report; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_html(report, session=session, timings=timings))
    return path
