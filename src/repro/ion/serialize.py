"""JSON serialization of diagnosis reports.

The paper's front end renders per-issue modals from the Analyzer's
output; this module is the API equivalent: a stable JSON encoding of a
:class:`DiagnosisReport` (and back), so reports can be archived next to
the trace, diffed between tool versions, or served to a UI.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.ion.issues import (
    Diagnosis,
    DiagnosisReport,
    IssueType,
    MitigationNote,
    Severity,
)
from repro.util.errors import ReproError

SCHEMA_VERSION = 1


def diagnosis_to_dict(diagnosis: Diagnosis) -> dict:
    """Encode one diagnosis as plain JSON-ready data."""
    return {
        "issue": diagnosis.issue.value,
        "severity": diagnosis.severity.value,
        "conclusion": diagnosis.conclusion,
        "steps": list(diagnosis.steps),
        "code": diagnosis.code,
        "code_output": diagnosis.code_output,
        "evidence": diagnosis.evidence,
        "mitigations": [note.value for note in diagnosis.mitigations],
    }


def diagnosis_from_dict(payload: dict) -> Diagnosis:
    """Decode one diagnosis; raises ReproError on malformed input."""
    try:
        return Diagnosis(
            issue=IssueType(payload["issue"]),
            severity=Severity(payload["severity"]),
            conclusion=str(payload["conclusion"]),
            steps=[str(step) for step in payload.get("steps", [])],
            code=str(payload.get("code", "")),
            code_output=str(payload.get("code_output", "")),
            evidence=dict(payload.get("evidence", {})),
            mitigations=[
                MitigationNote(note) for note in payload.get("mitigations", [])
            ],
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise ReproError(f"malformed diagnosis payload: {exc}") from exc


def report_to_dict(report: DiagnosisReport) -> dict:
    """Encode a full report."""
    return {
        "schema_version": SCHEMA_VERSION,
        "trace_name": report.trace_name,
        "summary": report.summary,
        "diagnoses": [diagnosis_to_dict(d) for d in report.diagnoses],
    }


def report_from_dict(payload: dict) -> DiagnosisReport:
    """Decode a full report; raises ReproError on malformed input."""
    try:
        version = int(payload.get("schema_version", 0))
    except (TypeError, ValueError) as exc:
        raise ReproError("malformed report payload: bad schema version") from exc
    if version != SCHEMA_VERSION:
        raise ReproError(
            f"unsupported report schema version {version} "
            f"(this build reads {SCHEMA_VERSION})"
        )
    try:
        return DiagnosisReport(
            trace_name=str(payload["trace_name"]),
            summary=str(payload.get("summary", "")),
            diagnoses=[
                diagnosis_from_dict(item) for item in payload["diagnoses"]
            ],
        )
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed report payload: {exc}") from exc


def dump_report(report: DiagnosisReport, path: str | Path) -> Path:
    """Write a report as JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report_to_dict(report), indent=2, sort_keys=True))
    return path


def load_report(path: str | Path) -> DiagnosisReport:
    """Read a report written by :func:`dump_report`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path} is not valid report JSON: {exc}") from exc
    return report_from_dict(payload)
