"""JSON serialization of diagnosis reports.

The paper's front end renders per-issue modals from the Analyzer's
output; this module is the API equivalent: a stable JSON encoding of a
:class:`DiagnosisReport` (and back), so reports can be archived next to
the trace, diffed between tool versions, or served to a UI.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.ion.issues import (
    Diagnosis,
    DiagnosisReport,
    IssueType,
    MitigationNote,
    ReportHealth,
    Severity,
)
from repro.util.errors import ReproError

#: Version 2 added degraded-mode fields on diagnoses and the report
#: health block; version-1 payloads (no such fields) remain readable.
SCHEMA_VERSION = 2
_READABLE_VERSIONS = (1, 2)


def diagnosis_to_dict(diagnosis: Diagnosis) -> dict:
    """Encode one diagnosis as plain JSON-ready data."""
    return {
        "issue": diagnosis.issue.value,
        "severity": diagnosis.severity.value,
        "conclusion": diagnosis.conclusion,
        "steps": list(diagnosis.steps),
        "code": diagnosis.code,
        "code_output": diagnosis.code_output,
        "evidence": diagnosis.evidence,
        "mitigations": [note.value for note in diagnosis.mitigations],
        "degraded": diagnosis.degraded,
        "degraded_reason": diagnosis.degraded_reason,
        "fallback_source": diagnosis.fallback_source,
    }


def diagnosis_from_dict(payload: dict) -> Diagnosis:
    """Decode one diagnosis; raises ReproError on malformed input."""
    try:
        return Diagnosis(
            issue=IssueType(payload["issue"]),
            severity=Severity(payload["severity"]),
            conclusion=str(payload["conclusion"]),
            steps=[str(step) for step in payload.get("steps", [])],
            code=str(payload.get("code", "")),
            code_output=str(payload.get("code_output", "")),
            evidence=dict(payload.get("evidence", {})),
            mitigations=[
                MitigationNote(note) for note in payload.get("mitigations", [])
            ],
            degraded=bool(payload.get("degraded", False)),
            degraded_reason=str(payload.get("degraded_reason", "")),
            fallback_source=str(payload.get("fallback_source", "")),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise ReproError(f"malformed diagnosis payload: {exc}") from exc


def health_to_dict(health: ReportHealth) -> dict:
    """Encode a report's pipeline-health block."""
    return {
        "queries": health.queries,
        "attempts": health.attempts,
        "retries": health.retries,
        "degraded": health.degraded,
        "fallbacks": health.fallbacks,
        "breaker_state": health.breaker_state,
        "breaker_trips": health.breaker_trips,
        "notes": list(health.notes),
    }


def health_from_dict(payload: dict) -> ReportHealth:
    """Decode a pipeline-health block; raises ReproError when malformed."""
    try:
        return ReportHealth(
            queries=int(payload.get("queries", 0)),
            attempts=int(payload.get("attempts", 0)),
            retries=int(payload.get("retries", 0)),
            degraded=int(payload.get("degraded", 0)),
            fallbacks=int(payload.get("fallbacks", 0)),
            breaker_state=str(payload.get("breaker_state", "closed")),
            breaker_trips=int(payload.get("breaker_trips", 0)),
            notes=[str(note) for note in payload.get("notes", [])],
        )
    except (AttributeError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed health payload: {exc}") from exc


def report_to_dict(report: DiagnosisReport) -> dict:
    """Encode a full report."""
    return {
        "schema_version": SCHEMA_VERSION,
        "trace_name": report.trace_name,
        "summary": report.summary,
        "diagnoses": [diagnosis_to_dict(d) for d in report.diagnoses],
        "health": (
            health_to_dict(report.health) if report.health is not None else None
        ),
    }


def report_from_dict(payload: dict) -> DiagnosisReport:
    """Decode a full report; raises ReproError on malformed input."""
    try:
        version = int(payload.get("schema_version", 0))
    except (TypeError, ValueError) as exc:
        raise ReproError("malformed report payload: bad schema version") from exc
    if version not in _READABLE_VERSIONS:
        raise ReproError(
            f"unsupported report schema version {version} "
            f"(this build reads {_READABLE_VERSIONS})"
        )
    health_payload = payload.get("health")
    try:
        return DiagnosisReport(
            trace_name=str(payload["trace_name"]),
            summary=str(payload.get("summary", "")),
            diagnoses=[
                diagnosis_from_dict(item) for item in payload["diagnoses"]
            ],
            health=(
                health_from_dict(health_payload)
                if health_payload is not None
                else None
            ),
        )
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed report payload: {exc}") from exc


def dump_report(report: DiagnosisReport, path: str | Path) -> Path:
    """Write a report as JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report_to_dict(report), indent=2, sort_keys=True))
    return path


def load_report(path: str | Path) -> DiagnosisReport:
    """Read a report written by :func:`dump_report`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path} is not valid report JSON: {exc}") from exc
    return report_from_dict(payload)
