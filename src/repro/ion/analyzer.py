"""The ION Analyzer: prompt dispatch, completion parsing, summarization.

For every issue type the Analyzer formats a prompt (issue context +
system parameters + filtered file descriptions + output format), runs
it against the LLM through an Assistants-style run with a code
interpreter attached, and parses the completion into a
:class:`~repro.ion.issues.Diagnosis` — steps, executed code, measured
evidence, severity and mitigation notes.  Prompts are dispatched in
parallel, as in the paper.  Finally a summarization prompt combines
all per-issue conclusions into the global summary.
"""

from __future__ import annotations

import json
import re
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.ion.contexts import IssueContext, context_for, default_issue_order
from repro.ion.extractor import ExtractionResult
from repro.ion.issues import (
    Diagnosis,
    DiagnosisReport,
    IssueType,
    MitigationNote,
    Severity,
)
from repro.ion.prompts import (
    ASSISTANT_INSTRUCTIONS,
    build_issue_prompt,
    build_monolithic_prompt,
    build_summary_prompt,
)
from repro.llm.assistants import Assistant, Run, RunStatus, Thread
from repro.llm.client import LLMClient
from repro.llm.expert.model import SimulatedExpertLLM, parse_conclusions
from repro.llm.interpreter import CodeInterpreter
from repro.llm.messages import Message
from repro.util.errors import AnalysisError
from repro.util.metrics import MetricsRegistry

_SEVERITY_RE = re.compile(r"\[severity=(\w+)\]")
_MITIGATIONS_RE = re.compile(r"\[mitigations=([\w,\s]+)\]")
_STEP_RE = re.compile(r"^\s*\d+\.\s+(.*\S)", flags=re.MULTILINE)
_ISSUE_MARKER = "### ISSUE:"

_TITLE_TO_ISSUE = {issue.title: issue for issue in IssueType}


@dataclass
class AnalyzerConfig:
    """Tunables of the analysis pipeline."""

    strategy: str = "divide"  # "divide" (paper) or "monolithic" (ABL1)
    include_context: bool = True  # False reproduces ABL2
    include_dxt: bool = True  # False forces counters-only analysis
    #: "static" uses the fixed per-issue contexts; "retrieval" builds
    #: each prompt's context from knowledge-base passages (RAG mode).
    context_source: str = "static"
    retrieval_k: int = 3
    issues: tuple[IssueType, ...] = field(
        default_factory=lambda: tuple(default_issue_order())
    )
    max_tool_rounds: int = 6
    #: Size of the thread pool dispatching per-issue prompts; 1 runs
    #: the prompts sequentially.
    parallel_prompts: int = 4
    summarize: bool = True

    def __post_init__(self) -> None:
        if self.strategy not in ("divide", "monolithic"):
            raise AnalysisError(f"unknown strategy {self.strategy!r}")
        if self.parallel_prompts < 1:
            raise AnalysisError("parallel_prompts must be at least 1")
        if self.max_tool_rounds < 1:
            raise AnalysisError("max_tool_rounds must be at least 1")
        if self.context_source not in ("static", "retrieval"):
            raise AnalysisError(
                f"unknown context source {self.context_source!r}"
            )
        if self.retrieval_k < 1:
            raise AnalysisError("retrieval_k must be at least 1")
        if not self.issues:
            raise AnalysisError("at least one issue type must be analyzed")


class Analyzer:
    """Runs the full per-issue diagnosis over one extraction."""

    def __init__(
        self,
        client: LLMClient | None = None,
        config: AnalyzerConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.client = client or SimulatedExpertLLM()
        self.config = config or AnalyzerConfig()
        self.metrics = metrics or MetricsRegistry()

    # -- public API ------------------------------------------------------

    def analyze(
        self, extraction: ExtractionResult, trace_name: str = "trace"
    ) -> DiagnosisReport:
        """Produce the full diagnosis report for one extracted trace."""
        with self.metrics.timer("analyzer.analyze.seconds").time():
            if self.config.strategy == "divide":
                diagnoses = self._analyze_divide(extraction, trace_name)
            else:
                diagnoses = self._analyze_monolithic(extraction, trace_name)
            report = DiagnosisReport(trace_name=trace_name, diagnoses=diagnoses)
            if self.config.summarize:
                report.summary = self._summarize(trace_name, diagnoses)
        self.metrics.counter("analyzer.reports").inc()
        return report

    # -- strategies ----------------------------------------------------------

    def _contexts(self, extraction: ExtractionResult) -> list[IssueContext]:
        if self.config.context_source == "retrieval":
            from repro.ion.retrieval import ContextRetriever

            retriever = ContextRetriever()
            return [
                retriever.retrieve(issue, extraction, k=self.config.retrieval_k)
                for issue in self.config.issues
            ]
        return [context_for(issue) for issue in self.config.issues]

    def _analyze_divide(
        self, extraction: ExtractionResult, trace_name: str
    ) -> list[Diagnosis]:
        contexts = self._contexts(extraction)

        def run_one(context: IssueContext) -> Diagnosis:
            prompt = build_issue_prompt(
                trace_name, context, extraction,
                include_context=self.config.include_context,
                include_dxt=self.config.include_dxt,
            )
            run = self._run_prompt(prompt, extraction)
            return self._diagnosis_from_run(context.issue, run)

        if self.config.parallel_prompts > 1:
            with ThreadPoolExecutor(
                max_workers=self.config.parallel_prompts
            ) as pool:
                return list(pool.map(run_one, contexts))
        return [run_one(context) for context in contexts]

    def _analyze_monolithic(
        self, extraction: ExtractionResult, trace_name: str
    ) -> list[Diagnosis]:
        contexts = self._contexts(extraction)
        prompt = build_monolithic_prompt(
            trace_name, contexts, extraction,
            include_context=self.config.include_context,
            include_dxt=self.config.include_dxt,
        )
        run = self._run_prompt(prompt, extraction)
        conclusions = parse_conclusions(run.final_text)
        evidence = self._evidence_by_issue(run)
        diagnoses = []
        for issue in self.config.issues:
            body = conclusions.get(issue.title)
            if body is None:
                diagnoses.append(
                    Diagnosis(
                        issue=issue,
                        severity=Severity.OK,
                        conclusion=(
                            "(the model did not address this issue in its "
                            "combined completion)"
                        ),
                    )
                )
                continue
            diagnoses.append(
                self._diagnosis_from_body(issue, body, run, evidence.get(issue))
            )
        return diagnoses

    # -- plumbing ---------------------------------------------------------------

    def _run_prompt(self, prompt: str, extraction: ExtractionResult) -> Run:
        self.metrics.counter("analyzer.prompts").inc()
        interpreter = CodeInterpreter(extraction.directory)
        assistant = Assistant(
            client=self.client,
            instructions=ASSISTANT_INSTRUCTIONS,
            interpreter=interpreter,
            max_tool_rounds=self.config.max_tool_rounds,
        )
        thread = Thread()
        thread.add(Message.user(prompt))
        run = assistant.run(thread)
        if run.status != RunStatus.COMPLETED:
            raise AnalysisError(
                "analysis run failed to complete within the tool budget"
            )
        return run

    def _diagnosis_from_run(self, issue: IssueType, run: Run) -> Diagnosis:
        conclusions = parse_conclusions(run.final_text)
        body = conclusions.get(issue.title, run.final_text)
        evidence = self._evidence_by_issue(run).get(issue)
        return self._diagnosis_from_body(issue, body, run, evidence)

    def _diagnosis_from_body(
        self, issue: IssueType, body: str, run: Run, evidence: dict | None
    ) -> Diagnosis:
        severity = Severity.OK
        match = _SEVERITY_RE.search(body)
        if match:
            try:
                severity = Severity(match.group(1))
            except ValueError as exc:
                raise AnalysisError(
                    f"model produced unknown severity {match.group(1)!r}"
                ) from exc
        mitigations: list[MitigationNote] = []
        match = _MITIGATIONS_RE.search(body)
        if match:
            for token in match.group(1).split(","):
                token = token.strip()
                if not token:
                    continue
                try:
                    mitigations.append(MitigationNote(token))
                except ValueError as exc:
                    raise AnalysisError(
                        f"model produced unknown mitigation {token!r}"
                    ) from exc
        conclusion = _SEVERITY_RE.sub("", body)
        conclusion = _MITIGATIONS_RE.sub("", conclusion).strip()
        steps = self._steps_from_run(run)
        return Diagnosis(
            issue=issue,
            severity=severity,
            conclusion=conclusion,
            steps=steps,
            code="\n\n".join(run.code_blocks),
            code_output=run.tool_outputs[-1] if run.tool_outputs else "",
            evidence=evidence or {},
            mitigations=mitigations,
        )

    def _steps_from_run(self, run: Run) -> list[str]:
        for step in run.steps:
            content = step.completion.content
            if "Diagnosis Steps:" in content:
                return _STEP_RE.findall(content)
        return []

    def _evidence_by_issue(self, run: Run) -> dict[IssueType, dict]:
        """Recover per-issue metrics from the last successful tool output."""
        evidence: dict[IssueType, dict] = {}
        for step in run.steps:
            if step.execution is None or not step.execution.ok:
                continue
            current: IssueType | None = None
            single = len(self.config.issues) == 1
            for line in step.execution.stdout.splitlines():
                line = line.strip()
                if line.startswith(_ISSUE_MARKER):
                    title_value = line[len(_ISSUE_MARKER):].strip()
                    current = next(
                        (i for i in IssueType if i.value == title_value), None
                    )
                    continue
                if not line.startswith("{"):
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if current is not None:
                    evidence[current] = payload
                elif single:
                    evidence[self.config.issues[0]] = payload
        return evidence

    # -- summary -------------------------------------------------------------------

    def _summarize(
        self, trace_name: str, diagnoses: list[Diagnosis]
    ) -> str:
        conclusions = [
            (
                diagnosis.issue,
                f"{diagnosis.conclusion} [severity={diagnosis.severity.value}]",
            )
            for diagnosis in diagnoses
        ]
        prompt = build_summary_prompt(trace_name, conclusions)
        completion = self.client.complete([Message.user(prompt)])
        return completion.content
