"""The ION Analyzer: prompt dispatch, completion parsing, summarization.

For every issue type the Analyzer formats a prompt (issue context +
system parameters + filtered file descriptions + output format), runs
it against the LLM through an Assistants-style run with a code
interpreter attached, and parses the completion into a
:class:`~repro.ion.issues.Diagnosis` — steps, executed code, measured
evidence, severity and mitigation notes.  Prompts are dispatched in
parallel, as in the paper.  Finally a summarization prompt combines
all per-issue conclusions into the global summary.

Every logical query runs inside a resilience envelope: retry with
exponential backoff and jitter, a per-query deadline, and a circuit
breaker shared across queries (and, in batch mode, across worker
analyzers).  A query that exhausts its budget does not abort the
report — it degrades to the deterministic Drishti heuristic fallback
(:mod:`repro.ion.degraded`) and the report's
:class:`~repro.ion.issues.ReportHealth` records what happened.
"""

from __future__ import annotations

import json
import random
import re
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.darshan.log import DarshanLog
from repro.ion.contexts import IssueContext, context_for, default_issue_order
from repro.ion.degraded import DrishtiFallback, compose_degraded_summary
from repro.ion.extractor import ExtractionResult
from repro.ion.issues import (
    Diagnosis,
    DiagnosisReport,
    IssueType,
    MitigationNote,
    ReportHealth,
    Severity,
)
from repro.ion.prompts import (
    ASSISTANT_INSTRUCTIONS,
    build_issue_prompt,
    build_monolithic_prompt,
    build_summary_prompt,
)
from repro.llm.assistants import Assistant, Run, RunStatus, Thread
from repro.llm.client import LLMClient
from repro.llm.expert.model import SimulatedExpertLLM, parse_conclusions
from repro.llm.interpreter import CodeInterpreter
from repro.sca.policy import GuardPolicy
from repro.llm.messages import Message
from repro.llm.resilience import BackoffPolicy, CircuitBreaker
from repro.obs.trace import NULL_TRACER
from repro.util.errors import AnalysisError, CircuitOpenError, LLMError
from repro.util.metrics import LATENCY_BUCKETS, SIZE_BUCKETS, MetricsRegistry

_SEVERITY_RE = re.compile(r"\[severity=(\w+)\]")
_MITIGATIONS_RE = re.compile(r"\[mitigations=([\w,\s]+)\]")
_STEP_RE = re.compile(r"^\s*\d+\.\s+(.*\S)", flags=re.MULTILINE)
_ISSUE_MARKER = "### ISSUE:"

_TITLE_TO_ISSUE = {issue.title: issue for issue in IssueType}

#: Failures the resilience envelope absorbs; anything else is a
#: programming error and propagates.
_RETRYABLE = (LLMError, AnalysisError)


@dataclass
class ResilienceConfig:
    """Retry, deadline, breaker and degradation tunables of the analyzer."""

    #: Total tries per logical query (1 = no retries).
    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max: float = 1.0
    #: Fraction of each capped delay that jitter may remove.
    backoff_jitter: float = 0.1
    #: Wall-clock budget for one logical query including retries and
    #: their delays; None disables the deadline.
    query_deadline: float | None = 30.0
    #: Consecutive query failures that trip the circuit breaker.
    breaker_failure_threshold: int = 5
    #: Seconds the breaker stays open before letting a probe through.
    breaker_recovery_seconds: float = 30.0
    #: Successful half-open probes required to close the breaker.
    breaker_half_open_successes: int = 1
    #: True (default): a query that exhausts its budget yields a
    #: DEGRADED diagnosis (Drishti fallback when the trace is known).
    #: False: the failure propagates and aborts the report (strict
    #: mode, the pre-resilience behaviour).
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise AnalysisError("max_attempts must be at least 1")
        if self.query_deadline is not None and self.query_deadline <= 0:
            raise AnalysisError("query_deadline must be positive when set")
        # Delegate the remaining bounds checks to BackoffPolicy /
        # CircuitBreaker so one validation story covers both layers.
        try:
            self.policy()
            CircuitBreaker(
                failure_threshold=self.breaker_failure_threshold,
                recovery_time=self.breaker_recovery_seconds,
                half_open_successes=self.breaker_half_open_successes,
            )
        except LLMError as exc:
            raise AnalysisError(f"invalid resilience config: {exc}") from exc

    def policy(self) -> BackoffPolicy:
        """The backoff policy this configuration describes."""
        return BackoffPolicy(
            max_attempts=self.max_attempts,
            base_delay=self.backoff_base,
            multiplier=self.backoff_multiplier,
            max_delay=max(self.backoff_max, self.backoff_base),
            jitter=self.backoff_jitter,
            deadline=self.query_deadline,
        )

    def breaker(self) -> CircuitBreaker:
        """A fresh circuit breaker with these thresholds."""
        return CircuitBreaker(
            failure_threshold=self.breaker_failure_threshold,
            recovery_time=self.breaker_recovery_seconds,
            half_open_successes=self.breaker_half_open_successes,
        )


@dataclass
class AnalyzerConfig:
    """Tunables of the analysis pipeline."""

    strategy: str = "divide"  # "divide" (paper) or "monolithic" (ABL1)
    include_context: bool = True  # False reproduces ABL2
    include_dxt: bool = True  # False forces counters-only analysis
    #: "static" uses the fixed per-issue contexts; "retrieval" builds
    #: each prompt's context from knowledge-base passages (RAG mode).
    context_source: str = "static"
    retrieval_k: int = 3
    issues: tuple[IssueType, ...] = field(
        default_factory=lambda: tuple(default_issue_order())
    )
    max_tool_rounds: int = 6
    #: Size of the thread pool dispatching per-issue prompts; 1 runs
    #: the prompts sequentially.
    parallel_prompts: int = 4
    summarize: bool = True
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    #: Static vetting of model-generated code before execution:
    #: "off", "warn" (count but execute), or "enforce" (reject BLOCK
    #: verdicts with traceback-style feedback).  Enforce is the default.
    guard: GuardPolicy | str = GuardPolicy.ENFORCE

    def __post_init__(self) -> None:
        if self.strategy not in ("divide", "monolithic"):
            raise AnalysisError(f"unknown strategy {self.strategy!r}")
        try:
            self.guard = GuardPolicy.parse(self.guard)
        except ValueError as exc:
            raise AnalysisError(str(exc)) from None
        if self.parallel_prompts < 1:
            raise AnalysisError("parallel_prompts must be at least 1")
        if self.max_tool_rounds < 1:
            raise AnalysisError("max_tool_rounds must be at least 1")
        if self.context_source not in ("static", "retrieval"):
            raise AnalysisError(
                f"unknown context source {self.context_source!r}"
            )
        if self.retrieval_k < 1:
            raise AnalysisError("retrieval_k must be at least 1")
        if not self.issues:
            raise AnalysisError("at least one issue type must be analyzed")


@dataclass
class _QueryStats:
    """Outcome accounting for one logical query (issue or summary)."""

    label: str
    attempts: int = 1
    degraded: bool = False
    fallback: bool = False
    reason: str = ""


class Analyzer:
    """Runs the full per-issue diagnosis over one extraction."""

    def __init__(
        self,
        client: LLMClient | None = None,
        config: AnalyzerConfig | None = None,
        metrics: MetricsRegistry | None = None,
        interpreter_factory: Callable[[Path], CodeInterpreter] | None = None,
        breaker: CircuitBreaker | None = None,
        sleep: Callable[[float], None] = time.sleep,
        tracer=None,
    ) -> None:
        self.client = client or SimulatedExpertLLM()
        self.config = config or AnalyzerConfig()
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer or NULL_TRACER
        self.interpreter_factory = interpreter_factory or self._default_interpreter
        #: Shared across every query of this analyzer; batch deployments
        #: pass one breaker to all worker analyzers so sustained backend
        #: failure trips the whole fleet, not one worker at a time.
        self.breaker = breaker or self.config.resilience.breaker()
        self._sleep = sleep
        # Jitter source: seeded so retry schedules are reproducible.
        self._rng = random.Random(0)

    def _default_interpreter(self, workdir: Path) -> CodeInterpreter:
        # Threads the guard policy, metrics and tracer into every
        # sandbox the analyzer spins up; custom factories (fault
        # shims, tests) bypass this and configure their own.
        return CodeInterpreter(
            workdir,
            guard=self.config.guard,
            metrics=self.metrics,
            tracer=self.tracer,
        )

    # -- public API ------------------------------------------------------

    def analyze(
        self,
        extraction: ExtractionResult,
        trace_name: str = "trace",
        log: DarshanLog | None = None,
    ) -> DiagnosisReport:
        """Produce the full diagnosis report for one extracted trace.

        ``log`` (optional) enables the Drishti heuristic fallback for
        queries that degrade; without it a degraded issue is reported
        as unexamined.
        """
        with self.tracer.span(
            "analyzer.analyze",
            attributes={"trace": trace_name, "strategy": self.config.strategy},
        ) as span:
            with self.metrics.timer("analyzer.analyze.seconds").time():
                trips_before = self.breaker.trips
                fallback = DrishtiFallback(log, trace_name)
                if self.config.strategy == "divide":
                    diagnoses, stats = self._analyze_divide(
                        extraction, trace_name, fallback
                    )
                else:
                    diagnoses, stats = self._analyze_monolithic(
                        extraction, trace_name, fallback
                    )
                report = DiagnosisReport(
                    trace_name=trace_name, diagnoses=diagnoses
                )
                if self.config.summarize:
                    report.summary, summary_stats = self._summarize(
                        trace_name, diagnoses
                    )
                    stats.append(summary_stats)
                report.health = self._health_from(stats, trips_before)
            span.set_attribute("queries", report.health.queries)
            span.set_attribute("retries", report.health.retries)
            span.set_attribute("degraded_queries", report.health.degraded)
        self.metrics.counter("analyzer.reports").inc()
        return report

    # -- resilience envelope ---------------------------------------------

    def _with_resilience(self, label, attempt_fn):
        """Run ``attempt_fn`` with retry/backoff/deadline/breaker.

        Returns ``(value, attempts, "")`` on success or
        ``(None, attempts, reason)`` once the budget is exhausted or
        the breaker refuses the call.  Only LLM-path failures
        (:data:`_RETRYABLE`) are absorbed.
        """
        policy = self.config.resilience.policy()
        span = self.tracer.current_span()
        started = time.perf_counter()
        attempts = 0
        reason = ""
        last_delay = 0.0
        for attempt in range(1, policy.max_attempts + 1):
            if not self.breaker.allow():
                self.metrics.counter("analyzer.breaker.short_circuited").inc()
                span.add_event(
                    "breaker.short_circuit",
                    label=label,
                    breaker=self.breaker.state.value,
                )
                short = CircuitOpenError(
                    f"circuit breaker open; {label} not attempted"
                )
                reason = f"{type(short).__name__}: {short}"
                break
            attempts += 1
            if attempts > 1:
                # One event per re-attempt: the backoff delay that just
                # elapsed and the breaker state letting the call through.
                span.add_event(
                    "retry",
                    attempt=attempts,
                    delay=round(last_delay, 9),
                    breaker=self.breaker.state.value,
                )
            self.metrics.counter("analyzer.queries.attempts").inc()
            try:
                value = attempt_fn()
            except _RETRYABLE as exc:
                trips_before = self.breaker.trips
                self.breaker.record_failure()
                if self.breaker.trips > trips_before:
                    self.metrics.counter("analyzer.breaker.opened").inc()
                    span.add_event(
                        "breaker.opened",
                        label=label,
                        trips=self.breaker.trips,
                    )
                reason = f"{type(exc).__name__}: {exc}"
                elapsed = time.perf_counter() - started
                deadline = policy.deadline
                if deadline is not None and elapsed >= deadline:
                    reason += " (query deadline exhausted)"
                    break
                if attempt < policy.max_attempts:
                    delay = policy.delay(attempt, self._rng)
                    if deadline is not None:
                        delay = min(delay, max(deadline - elapsed, 0.0))
                    if delay > 0:
                        self._sleep(delay)
                    last_delay = delay
                    self.metrics.counter("analyzer.queries.retries").inc()
                continue
            self.breaker.record_success()
            return value, attempts, ""
        return None, attempts, reason

    def _degrade_or_raise(
        self,
        issue: IssueType,
        fallback: DrishtiFallback,
        reason: str,
    ) -> Diagnosis:
        if not self.config.resilience.degrade:
            raise AnalysisError(
                f"query for {issue.title!r} failed without degraded mode: "
                f"{reason}"
            )
        self.metrics.counter("analyzer.queries.degraded").inc()
        diagnosis = fallback.diagnosis_for(issue, reason)
        if diagnosis.fallback_source == "drishti":
            self.metrics.counter("analyzer.fallback.drishti").inc()
        return diagnosis

    def _health_from(
        self, stats: list[_QueryStats], trips_before: int
    ) -> ReportHealth:
        health = ReportHealth(
            queries=len(stats),
            attempts=sum(s.attempts for s in stats),
            retries=sum(max(s.attempts - 1, 0) for s in stats),
            degraded=sum(1 for s in stats if s.degraded),
            fallbacks=sum(1 for s in stats if s.fallback),
            breaker_state=self.breaker.state.value,
            breaker_trips=self.breaker.trips - trips_before,
            notes=[f"{s.label}: {s.reason}" for s in stats if s.degraded],
        )
        return health

    # -- strategies ----------------------------------------------------------

    def _contexts(self, extraction: ExtractionResult) -> list[IssueContext]:
        if self.config.context_source == "retrieval":
            from repro.ion.retrieval import ContextRetriever

            retriever = ContextRetriever()
            return [
                retriever.retrieve(issue, extraction, k=self.config.retrieval_k)
                for issue in self.config.issues
            ]
        return [context_for(issue) for issue in self.config.issues]

    def _analyze_divide(
        self,
        extraction: ExtractionResult,
        trace_name: str,
        fallback: DrishtiFallback,
    ) -> tuple[list[Diagnosis], list[_QueryStats]]:
        contexts = self._contexts(extraction)
        # Captured before the pool: worker threads have no ambient span
        # context, so the per-issue query spans take their parent by
        # explicit handoff across the thread boundary.
        parent = self.tracer.current_span()

        def run_one(context: IssueContext) -> tuple[Diagnosis, _QueryStats]:
            prompt = build_issue_prompt(
                trace_name, context, extraction,
                include_context=self.config.include_context,
                include_dxt=self.config.include_dxt,
            )

            def attempt() -> Diagnosis:
                run = self._run_prompt(prompt, extraction)
                return self._diagnosis_from_run(context.issue, run)

            with self.tracer.span(
                "analyzer.query",
                attributes={"issue": context.issue.value},
                parent=parent,
            ) as span:
                span.set_attribute("prompt.chars", len(prompt))
                query_started = time.perf_counter()
                diagnosis, attempts, reason = self._with_resilience(
                    f"query:{context.issue.value}", attempt
                )
                self.metrics.histogram(
                    "analyzer.query.seconds", LATENCY_BUCKETS
                ).observe(time.perf_counter() - query_started)
                span.set_attribute("attempts", attempts)
                stats = _QueryStats(
                    label=f"query:{context.issue.value}", attempts=attempts
                )
                if diagnosis is None:
                    diagnosis = self._degrade_or_raise(
                        context.issue, fallback, reason
                    )
                    stats.degraded = True
                    stats.fallback = diagnosis.fallback_source == "drishti"
                    stats.reason = reason
                    span.set_attribute("degraded", True)
                    span.set_attribute(
                        "fallback", diagnosis.fallback_source or "none"
                    )
                    span.set_attribute("reason", reason)
            return diagnosis, stats

        if self.config.parallel_prompts > 1:
            with ThreadPoolExecutor(
                max_workers=self.config.parallel_prompts
            ) as pool:
                results = list(pool.map(run_one, contexts))
        else:
            results = [run_one(context) for context in contexts]
        return [d for d, _ in results], [s for _, s in results]

    def _analyze_monolithic(
        self,
        extraction: ExtractionResult,
        trace_name: str,
        fallback: DrishtiFallback,
    ) -> tuple[list[Diagnosis], list[_QueryStats]]:
        contexts = self._contexts(extraction)
        prompt = build_monolithic_prompt(
            trace_name, contexts, extraction,
            include_context=self.config.include_context,
            include_dxt=self.config.include_dxt,
        )

        def attempt() -> list[Diagnosis]:
            run = self._run_prompt(prompt, extraction)
            conclusions = parse_conclusions(run.final_text)
            evidence = self._evidence_by_issue(run)
            diagnoses = []
            for issue in self.config.issues:
                body = conclusions.get(issue.title)
                if body is None:
                    diagnoses.append(
                        Diagnosis(
                            issue=issue,
                            severity=Severity.OK,
                            conclusion=(
                                "(the model did not address this issue in its "
                                "combined completion)"
                            ),
                        )
                    )
                    continue
                diagnoses.append(
                    self._diagnosis_from_body(
                        issue, body, run, evidence.get(issue)
                    )
                )
            return diagnoses

        with self.tracer.span(
            "analyzer.query", attributes={"issue": "monolithic"}
        ) as span:
            span.set_attribute("prompt.chars", len(prompt))
            query_started = time.perf_counter()
            diagnoses, attempts, reason = self._with_resilience(
                "query:monolithic", attempt
            )
            self.metrics.histogram(
                "analyzer.query.seconds", LATENCY_BUCKETS
            ).observe(time.perf_counter() - query_started)
            span.set_attribute("attempts", attempts)
            stats = _QueryStats(label="query:monolithic", attempts=attempts)
            if diagnoses is None:
                # The one combined query failed: every issue degrades.
                diagnoses = [
                    self._degrade_or_raise(issue, fallback, reason)
                    for issue in self.config.issues
                ]
                stats.degraded = True
                stats.fallback = any(
                    d.fallback_source == "drishti" for d in diagnoses
                )
                stats.reason = reason
                span.set_attribute("degraded", True)
                span.set_attribute(
                    "fallback", "drishti" if stats.fallback else "none"
                )
                span.set_attribute("reason", reason)
        return diagnoses, [stats]

    # -- plumbing ---------------------------------------------------------------

    def _run_prompt(self, prompt: str, extraction: ExtractionResult) -> Run:
        self.metrics.counter("analyzer.prompts").inc()
        self.metrics.histogram(
            "analyzer.prompt.chars", SIZE_BUCKETS
        ).observe(len(prompt))
        with self.tracer.span(
            "llm.prompt", attributes={"prompt.chars": len(prompt)}
        ) as span:
            interpreter = self.interpreter_factory(extraction.directory)
            assistant = Assistant(
                client=self.client,
                instructions=ASSISTANT_INSTRUCTIONS,
                interpreter=interpreter,
                max_tool_rounds=self.config.max_tool_rounds,
                tracer=self.tracer,
            )
            thread = Thread()
            thread.add(Message.user(prompt))
            run = assistant.run(thread)
            span.set_attribute("rounds", len(run.steps))
            span.set_attribute("completion.chars", len(run.final_text))
            self.metrics.histogram(
                "analyzer.completion.chars", SIZE_BUCKETS
            ).observe(len(run.final_text))
            if run.status != RunStatus.COMPLETED:
                raise AnalysisError(
                    "analysis run failed to complete within the tool budget"
                )
        return run

    def _diagnosis_from_run(self, issue: IssueType, run: Run) -> Diagnosis:
        conclusions = parse_conclusions(run.final_text)
        body = conclusions.get(issue.title, run.final_text)
        evidence = self._evidence_by_issue(run).get(issue)
        return self._diagnosis_from_body(issue, body, run, evidence)

    def _diagnosis_from_body(
        self, issue: IssueType, body: str, run: Run, evidence: dict | None
    ) -> Diagnosis:
        severity = Severity.OK
        match = _SEVERITY_RE.search(body)
        if match:
            try:
                severity = Severity(match.group(1))
            except ValueError as exc:
                raise AnalysisError(
                    f"model produced unknown severity {match.group(1)!r}"
                ) from exc
        mitigations: list[MitigationNote] = []
        match = _MITIGATIONS_RE.search(body)
        if match:
            for token in match.group(1).split(","):
                token = token.strip()
                if not token:
                    continue
                try:
                    mitigations.append(MitigationNote(token))
                except ValueError as exc:
                    raise AnalysisError(
                        f"model produced unknown mitigation {token!r}"
                    ) from exc
        conclusion = _SEVERITY_RE.sub("", body)
        conclusion = _MITIGATIONS_RE.sub("", conclusion).strip()
        steps = self._steps_from_run(run)
        return Diagnosis(
            issue=issue,
            severity=severity,
            conclusion=conclusion,
            steps=steps,
            code="\n\n".join(run.code_blocks),
            code_output=run.tool_outputs[-1] if run.tool_outputs else "",
            evidence=evidence or {},
            mitigations=mitigations,
        )

    def _steps_from_run(self, run: Run) -> list[str]:
        for step in run.steps:
            content = step.completion.content
            if "Diagnosis Steps:" in content:
                return _STEP_RE.findall(content)
        return []

    def _evidence_by_issue(self, run: Run) -> dict[IssueType, dict]:
        """Recover per-issue metrics from the last successful tool output."""
        evidence: dict[IssueType, dict] = {}
        for step in run.steps:
            if step.execution is None or not step.execution.ok:
                continue
            current: IssueType | None = None
            single = len(self.config.issues) == 1
            for line in step.execution.stdout.splitlines():
                line = line.strip()
                if line.startswith(_ISSUE_MARKER):
                    title_value = line[len(_ISSUE_MARKER):].strip()
                    current = next(
                        (i for i in IssueType if i.value == title_value), None
                    )
                    continue
                if not line.startswith("{"):
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if current is not None:
                    evidence[current] = payload
                elif single:
                    evidence[self.config.issues[0]] = payload
        return evidence

    # -- summary -------------------------------------------------------------------

    def _summarize(
        self, trace_name: str, diagnoses: list[Diagnosis]
    ) -> tuple[str, _QueryStats]:
        conclusions = [
            (
                diagnosis.issue,
                f"{diagnosis.conclusion} [severity={diagnosis.severity.value}]",
            )
            for diagnosis in diagnoses
        ]
        prompt = build_summary_prompt(trace_name, conclusions)

        def attempt() -> str:
            return self.client.complete([Message.user(prompt)]).content

        with self.tracer.span(
            "analyzer.summarize", attributes={"prompt.chars": len(prompt)}
        ) as span:
            query_started = time.perf_counter()
            summary, attempts, reason = self._with_resilience(
                "query:summary", attempt
            )
            self.metrics.histogram(
                "analyzer.query.seconds", LATENCY_BUCKETS
            ).observe(time.perf_counter() - query_started)
            span.set_attribute("attempts", attempts)
            stats = _QueryStats(label="query:summary", attempts=attempts)
            if summary is None:
                if not self.config.resilience.degrade:
                    raise AnalysisError(
                        f"summarization query failed without degraded mode: "
                        f"{reason}"
                    )
                self.metrics.counter("analyzer.queries.degraded").inc()
                summary = compose_degraded_summary(
                    trace_name, diagnoses, reason
                )
                stats.degraded = True
                stats.reason = reason
                span.set_attribute("degraded", True)
                span.set_attribute("reason", reason)
        return summary, stats
