"""Retrieval-augmented context construction (the paper's future work 3).

Instead of the fixed issue→context mapping, this module treats every
paragraph of the knowledge base as a retrievable passage and assembles
each prompt's context from the top-k passages for a query derived from
the target issue and the trace's observable features.  The paper lists
"test alternatives to in-context learning like Retrieval-Augmented
Generation (RAG)" as future work; this is that alternative, built on a
dependency-free TF-IDF index so behaviour is deterministic.

The trade-off it exposes (measured by ``bench_ablation_retrieval``):
with enough passages retrieved, diagnosis quality matches the static
mapping; with k too small, prompts can miss the passage naming the key
counters, and the grounded analysis degrades — the cost of retrieval
recall replacing curated mappings.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from dataclasses import dataclass

from repro.ion.contexts import IssueContext, all_contexts
from repro.ion.extractor import ExtractionResult
from repro.ion.issues import IssueType

_TOKEN_RE = re.compile(r"[a-z0-9_*]+")


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens (underscores kept: counter names matter).

    Two domain normalizations matter: "I/O" becomes the single token
    ``io`` (otherwise it shatters into the stop-word-like fragments
    ``i`` and ``o``), and "MPI-IO" becomes ``mpiio`` (otherwise every
    mention floods the corpus with an extra ``io``).
    """
    normalized = text.lower().replace("mpi-io", "mpiio").replace("i/o", "io")
    return _TOKEN_RE.findall(normalized)


@dataclass(frozen=True)
class Passage:
    """One retrievable knowledge-base paragraph."""

    issue: IssueType
    ordinal: int  # paragraph index within its source context
    text: str

    @property
    def indexed_text(self) -> str:
        """What the index sees: the section title header plus the body.

        Prefixing each chunk with its source section's title is standard
        retrieval practice — paragraphs rarely restate their topic, so
        without the header a paragraph about aggregation never mentions
        'Small I/O Operations' at all.
        """
        return f"{self.issue.title}. {self.text}"


class TfIdfIndex:
    """A small, deterministic TF-IDF index with cosine scoring."""

    def __init__(self, documents: list[str]) -> None:
        self._documents = documents
        self._term_frequencies: list[Counter[str]] = []
        document_frequency: Counter[str] = Counter()
        for document in documents:
            counts = Counter(tokenize(document))
            self._term_frequencies.append(counts)
            document_frequency.update(set(counts))
        total = max(len(documents), 1)
        self._idf = {
            term: math.log((1 + total) / (1 + freq)) + 1.0
            for term, freq in document_frequency.items()
        }
        self._norms = [self._norm(counts) for counts in self._term_frequencies]

    def _weight(self, term: str, count: int) -> float:
        return (1.0 + math.log(count)) * self._idf.get(term, 0.0)

    def _norm(self, counts: Counter[str]) -> float:
        value = math.sqrt(
            sum(self._weight(term, count) ** 2 for term, count in counts.items())
        )
        return value or 1.0

    def score(self, query: str, index: int) -> float:
        """Cosine similarity between ``query`` and document ``index``."""
        query_counts = Counter(tokenize(query))
        if not query_counts:
            return 0.0
        query_norm = self._norm(query_counts) or 1.0
        doc_counts = self._term_frequencies[index]
        dot = 0.0
        for term, count in query_counts.items():
            if term in doc_counts:
                dot += self._weight(term, count) * self._weight(
                    term, doc_counts[term]
                )
        return dot / (query_norm * self._norms[index])

    def search(self, query: str, k: int) -> list[int]:
        """Indices of the top-k documents, best first (stable ties)."""
        scored = sorted(
            range(len(self._documents)),
            key=lambda index: (-self.score(query, index), index),
        )
        return scored[:k]


def build_knowledge_base() -> list[Passage]:
    """Split every issue context into paragraph passages."""
    passages: list[Passage] = []
    for context in all_contexts():
        paragraphs = [
            paragraph.strip()
            for paragraph in context.text.split("\n\n")
            if paragraph.strip()
        ]
        for ordinal, paragraph in enumerate(paragraphs):
            passages.append(
                Passage(issue=context.issue, ordinal=ordinal, text=paragraph)
            )
    return passages


class ContextRetriever:
    """Builds per-issue contexts by retrieval instead of fixed mapping."""

    def __init__(self, passages: list[Passage] | None = None) -> None:
        self.passages = passages or build_knowledge_base()
        self._index = TfIdfIndex([p.indexed_text for p in self.passages])

    def query_for(self, issue: IssueType, extraction: ExtractionResult) -> str:
        """Compose the retrieval query from the issue and trace features.

        The issue terms are repeated so they dominate the cosine score;
        module names act as weak secondary signals (a prompt about
        MPI-IO usage should prefer passages naming MPI-IO counters).
        """
        issue_terms = f"{issue.title} {issue.value.replace('_', ' ')}"
        parts = [issue_terms]
        # Module names are added only for the interface-usage issues,
        # where they are the topic; elsewhere they drown the issue terms
        # (every passage mentions POSIX counters somewhere).
        if issue in (IssueType.NO_MPIIO, IssueType.NO_COLLECTIVE):
            parts.extend(sorted(extraction.csv_paths))
        return " ".join(parts)

    def retrieve(
        self, issue: IssueType, extraction: ExtractionResult, k: int = 3
    ) -> IssueContext:
        """Assemble an :class:`IssueContext` from the top-k passages.

        The required-module mapping is inherited from the static context
        (retrieval replaces the *knowledge text*, not the file routing,
        which the paper describes as a separate predefined mapping).
        """
        from repro.ion.contexts import context_for

        query = self.query_for(issue, extraction)
        hits = self._index.search(query, k)
        text = "\n\n".join(self.passages[index].text for index in hits)
        static = context_for(issue)
        return IssueContext(
            issue=issue, text=text, required_modules=static.required_modules
        )

    def retrieval_accuracy(
        self, extraction: ExtractionResult, k: int = 3
    ) -> float:
        """Fraction of issues whose top-k hits include both own passages.

        A diagnostic for the bench: quality degrades exactly when the
        passage carrying the key counter names is not retrieved.
        """
        covered = 0
        for issue in IssueType:
            query = self.query_for(issue, extraction)
            hits = {self.passages[i].issue for i in self._index.search(query, k)}
            if issue in hits:
                covered += 1
        return covered / len(IssueType)
