"""ION's interactive Q&A interface over a finished diagnosis.

After the global summary, the paper's front end exposes a message
window where the scientist asks follow-up questions about any analysis
step or result.  :class:`IonSession` reproduces that: it builds a
digest of the report (summary, per-issue conclusions, measured
evidence) and answers each question through the LLM with the digest as
context, keeping the conversation history.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.ion.issues import DiagnosisReport
from repro.ion.prompts import build_question_prompt
from repro.llm.client import LLMClient
from repro.llm.messages import Message
from repro.obs.trace import NULL_TRACER
from repro.util.errors import LLMError


def build_digest(report: DiagnosisReport) -> str:
    """Render a report into the digest format the Q&A prompt carries."""
    lines = [f"Summary: {' '.join(report.summary.split())}"]
    for diagnosis in report.diagnoses:
        lines.append("")
        lines.append(
            f"[{diagnosis.issue.value}] severity={diagnosis.severity.value}"
        )
        lines.append(f"Conclusion: {diagnosis.conclusion}")
        lines.append(f"Evidence: {json.dumps(diagnosis.evidence, sort_keys=True)}")
    return "\n".join(lines)


@dataclass
class Exchange:
    """One question/answer pair in a session."""

    question: str
    answer: str


@dataclass
class IonSession:
    """A conversational window onto one diagnosis report.

    The session degrades rather than raises when the LLM path fails: a
    question asked while the backend is down gets a deterministic
    answer pointing at the already-computed diagnosis, and
    ``degraded_answers`` counts how often that happened.
    """

    report: DiagnosisReport
    client: LLMClient
    history: list[Exchange] = field(default_factory=list)
    degraded_answers: int = 0
    tracer: object = field(default_factory=lambda: NULL_TRACER)

    def ask(self, question: str) -> str:
        """Ask a follow-up question; the answer cites measured evidence."""
        question = question.strip()
        if not question:
            raise ValueError("question must not be empty")
        prompt = build_question_prompt(
            self.report.trace_name, build_digest(self.report), question
        )
        with self.tracer.span(
            "session.ask", attributes={"turn": len(self.history) + 1}
        ) as span:
            try:
                answer = self.client.complete([Message.user(prompt)]).content
            except LLMError as exc:
                self.degraded_answers += 1
                span.set_attribute("degraded", True)
                flagged = sorted(
                    issue.title for issue in self.report.detected_issues
                )
                summary = (
                    "; flagged issues: " + ", ".join(flagged)
                    if flagged
                    else "; no issues were flagged"
                )
                answer = (
                    f"(degraded answer — assistant unavailable: "
                    f"{type(exc).__name__}: {exc}) Refer to the diagnosis "
                    f"report for {self.report.trace_name}{summary}."
                )
        exchange = Exchange(question=question, answer=answer)
        self.history.append(exchange)
        return exchange.answer
