"""ION's interactive Q&A interface over a finished diagnosis.

After the global summary, the paper's front end exposes a message
window where the scientist asks follow-up questions about any analysis
step or result.  :class:`IonSession` reproduces that: it builds a
digest of the report (summary, per-issue conclusions, measured
evidence) and answers each question through the LLM with the digest as
context, keeping the conversation history.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.ion.issues import DiagnosisReport
from repro.ion.prompts import build_question_prompt
from repro.llm.client import LLMClient
from repro.llm.messages import Message


def build_digest(report: DiagnosisReport) -> str:
    """Render a report into the digest format the Q&A prompt carries."""
    lines = [f"Summary: {' '.join(report.summary.split())}"]
    for diagnosis in report.diagnoses:
        lines.append("")
        lines.append(
            f"[{diagnosis.issue.value}] severity={diagnosis.severity.value}"
        )
        lines.append(f"Conclusion: {diagnosis.conclusion}")
        lines.append(f"Evidence: {json.dumps(diagnosis.evidence, sort_keys=True)}")
    return "\n".join(lines)


@dataclass
class Exchange:
    """One question/answer pair in a session."""

    question: str
    answer: str


@dataclass
class IonSession:
    """A conversational window onto one diagnosis report."""

    report: DiagnosisReport
    client: LLMClient
    history: list[Exchange] = field(default_factory=list)

    def ask(self, question: str) -> str:
        """Ask a follow-up question; the answer cites measured evidence."""
        question = question.strip()
        if not question:
            raise ValueError("question must not be empty")
        prompt = build_question_prompt(
            self.report.trace_name, build_digest(self.report), question
        )
        completion = self.client.complete([Message.user(prompt)])
        exchange = Exchange(question=question, answer=completion.content)
        self.history.append(exchange)
        return exchange.answer
