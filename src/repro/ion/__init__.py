"""ION core: extractor, issue contexts, analyzer, reports, interactivity."""

from repro.ion.analyzer import Analyzer, AnalyzerConfig
from repro.ion.consistency import (
    ConsistencyChecker,
    ConsistencyReport,
    IssueConsistency,
)
from repro.ion.contexts import IssueContext, all_contexts, context_for
from repro.ion.extractor import ExtractionResult, Extractor
from repro.ion.htmlreport import render_html, write_html
from repro.ion.interactive import IonSession, build_digest
from repro.ion.issues import (
    Diagnosis,
    DiagnosisReport,
    IssueType,
    MitigationNote,
    Severity,
)
from repro.ion.pipeline import IonResult, IoNavigator
from repro.ion.retrieval import ContextRetriever, Passage, TfIdfIndex, build_knowledge_base
from repro.ion.report import render_diagnosis, render_report
from repro.ion.serialize import (
    dump_report,
    load_report,
    report_from_dict,
    report_to_dict,
)

__all__ = [
    "Analyzer",
    "AnalyzerConfig",
    "ConsistencyChecker",
    "ConsistencyReport",
    "ContextRetriever",
    "Diagnosis",
    "DiagnosisReport",
    "ExtractionResult",
    "Extractor",
    "IonResult",
    "IonSession",
    "IoNavigator",
    "IssueConsistency",
    "IssueContext",
    "IssueType",
    "MitigationNote",
    "Passage",
    "Severity",
    "TfIdfIndex",
    "all_contexts",
    "build_digest",
    "build_knowledge_base",
    "context_for",
    "dump_report",
    "load_report",
    "render_diagnosis",
    "render_html",
    "render_report",
    "report_from_dict",
    "report_to_dict",
    "write_html",
]
