"""The IoNavigator facade: one call from trace to report.

Ties the Extractor, Analyzer and interactive session together, exactly
following Figure 1 of the paper: binary Darshan log -> module CSVs ->
parallel per-issue prompts -> diagnoses -> global summary -> Q&A.

The navigator *owns* its scratch space: when no ``workdir`` is given,
extraction CSVs land in one private temp directory that ``close()``
(or use as a context manager) removes.  Passing an
:class:`~repro.service.cache.ExtractionCache` instead routes
extractions through the content-addressed cache, so repeated
diagnoses of byte-identical traces skip the extraction stage
entirely.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.darshan.binformat import read_log
from repro.darshan.log import DarshanLog
from repro.ion.analyzer import Analyzer, AnalyzerConfig
from repro.ion.extractor import ExtractionResult, Extractor
from repro.ion.interactive import IonSession
from repro.ion.issues import DiagnosisReport
from repro.llm.client import LLMClient
from repro.llm.expert.model import SimulatedExpertLLM
from repro.obs.trace import NULL_TRACER
from repro.util.metrics import MetricsRegistry
from repro.util.units import MIB

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.cache import ExtractionCache


@dataclass
class IonResult:
    """Everything one diagnosis produced."""

    report: DiagnosisReport
    extraction: ExtractionResult
    session: IonSession
    cache_hit: bool = False


class IoNavigator:
    """End-to-end ION pipeline over a Darshan trace."""

    def __init__(
        self,
        client: LLMClient | None = None,
        config: AnalyzerConfig | None = None,
        workdir: str | Path | None = None,
        rpc_size: int = 4 * MIB,
        cache: "ExtractionCache | None" = None,
        metrics: MetricsRegistry | None = None,
        interpreter_factory=None,
        tracer=None,
    ) -> None:
        self.client = client or SimulatedExpertLLM()
        self.config = config or AnalyzerConfig()
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer or NULL_TRACER
        self.extractor = Extractor(
            rpc_size=rpc_size, metrics=self.metrics, tracer=self.tracer
        )
        self.analyzer = Analyzer(
            client=self.client,
            config=self.config,
            metrics=self.metrics,
            interpreter_factory=interpreter_factory,
            tracer=self.tracer,
        )
        self.cache = cache
        self._workdir = Path(workdir) if workdir else None
        self._scratch: Path | None = None
        self._closed = False

    # -- scratch ownership --------------------------------------------

    def _extraction_dir(self, trace_name: str) -> Path:
        if self._workdir is not None:
            path = self._workdir / trace_name
            path.mkdir(parents=True, exist_ok=True)
            return path
        if self._scratch is None:
            self._scratch = Path(tempfile.mkdtemp(prefix="ion-"))
        # Uniquify so two traces sharing a name cannot cross-pollute.
        path = self._scratch / trace_name
        suffix = 1
        while path.exists():
            suffix += 1
            path = self._scratch / f"{trace_name}-{suffix}"
        path.mkdir(parents=True)
        return path

    def close(self) -> None:
        """Remove the navigator's private scratch directory.

        User-supplied ``workdir`` contents and cache entries are left
        alone — the navigator only deletes what it created.  Safe to
        call more than once.
        """
        self._closed = True
        if self._scratch is not None:
            shutil.rmtree(self._scratch, ignore_errors=True)
            self._scratch = None

    def __enter__(self) -> "IoNavigator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- diagnosis ----------------------------------------------------

    def diagnose(self, log: DarshanLog, trace_name: str = "trace") -> IonResult:
        """Diagnose an in-memory Darshan log."""
        with self.tracer.span(
            "pipeline.diagnose", attributes={"trace": trace_name}
        ) as span:
            with self.metrics.timer("pipeline.diagnose.seconds").time():
                extraction, hit = self._extract(log, trace_name)
                span.set_attribute("cache.hit", hit)
                return self._analyze(
                    extraction, trace_name, log=log, cache_hit=hit
                )

    def diagnose_file(self, log_path: str | Path) -> IonResult:
        """Diagnose a binary Darshan log file."""
        log_path = Path(log_path)
        trace_name = log_path.stem
        log = read_log(log_path)
        with self.tracer.span(
            "pipeline.diagnose", attributes={"trace": trace_name}
        ) as span:
            with self.metrics.timer("pipeline.diagnose.seconds").time():
                extraction, hit = self._extract(log, trace_name)
                span.set_attribute("cache.hit", hit)
                return self._analyze(
                    extraction, trace_name, log=log, cache_hit=hit
                )

    def _extract(
        self, log: DarshanLog, trace_name: str
    ) -> tuple[ExtractionResult, bool]:
        if self.cache is not None:
            return self.cache.get_or_extract(log, self.extractor)
        return self.extractor.extract(log, self._extraction_dir(trace_name)), False

    def _analyze(
        self,
        extraction: ExtractionResult,
        trace_name: str,
        log: DarshanLog | None = None,
        cache_hit: bool = False,
    ) -> IonResult:
        report = self.analyzer.analyze(extraction, trace_name, log=log)
        session = IonSession(
            report=report, client=self.client, tracer=self.tracer
        )
        return IonResult(
            report=report,
            extraction=extraction,
            session=session,
            cache_hit=cache_hit,
        )
