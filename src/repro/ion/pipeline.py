"""The IoNavigator facade: one call from trace to report.

Ties the Extractor, Analyzer and interactive session together, exactly
following Figure 1 of the paper: binary Darshan log -> module CSVs ->
parallel per-issue prompts -> diagnoses -> global summary -> Q&A.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.darshan.log import DarshanLog
from repro.ion.analyzer import Analyzer, AnalyzerConfig
from repro.ion.extractor import ExtractionResult, Extractor
from repro.ion.interactive import IonSession
from repro.ion.issues import DiagnosisReport
from repro.llm.client import LLMClient
from repro.llm.expert.model import SimulatedExpertLLM
from repro.util.units import MIB


@dataclass
class IonResult:
    """Everything one diagnosis produced."""

    report: DiagnosisReport
    extraction: ExtractionResult
    session: IonSession


class IoNavigator:
    """End-to-end ION pipeline over a Darshan trace."""

    def __init__(
        self,
        client: LLMClient | None = None,
        config: AnalyzerConfig | None = None,
        workdir: str | Path | None = None,
        rpc_size: int = 4 * MIB,
    ) -> None:
        self.client = client or SimulatedExpertLLM()
        self.config = config or AnalyzerConfig()
        self.extractor = Extractor(rpc_size=rpc_size)
        self.analyzer = Analyzer(client=self.client, config=self.config)
        self._workdir = Path(workdir) if workdir else None

    def _extraction_dir(self, trace_name: str) -> Path:
        if self._workdir is not None:
            path = self._workdir / trace_name
            path.mkdir(parents=True, exist_ok=True)
            return path
        return Path(tempfile.mkdtemp(prefix=f"ion-{trace_name}-"))

    def diagnose(self, log: DarshanLog, trace_name: str = "trace") -> IonResult:
        """Diagnose an in-memory Darshan log."""
        extraction = self.extractor.extract(log, self._extraction_dir(trace_name))
        return self._analyze(extraction, trace_name)

    def diagnose_file(self, log_path: str | Path) -> IonResult:
        """Diagnose a binary Darshan log file."""
        log_path = Path(log_path)
        trace_name = log_path.stem
        extraction = self.extractor.extract_file(
            log_path, self._extraction_dir(trace_name)
        )
        return self._analyze(extraction, trace_name)

    def _analyze(self, extraction: ExtractionResult, trace_name: str) -> IonResult:
        report = self.analyzer.analyze(extraction, trace_name)
        session = IonSession(report=report, client=self.client)
        return IonResult(report=report, extraction=extraction, session=session)
