"""Diagnosis consistency checking (the paper's future work 2).

The paper plans to "optimize the prompts to enable consistency checking
of the diagnosis results".  This module implements that: the same trace
is diagnosed through several independent pipeline *variants* — the
standard divide-and-conquer run, a counters-only run (no DXT data), and
optionally the monolithic prompt — and the per-issue severities are
compared and majority-voted.

Disagreement between variants is itself a diagnostic signal: an issue
whose verdict flips when DXT is removed rests on per-operation evidence
(worth flagging to the user as such), and an issue that vanishes only
under the monolithic prompt exposes a context-window extraction failure
rather than a property of the trace.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.ion.analyzer import Analyzer, AnalyzerConfig
from repro.ion.extractor import ExtractionResult
from repro.ion.issues import DiagnosisReport, IssueType, Severity
from repro.llm.client import LLMClient
from repro.util.errors import AnalysisError

#: The named pipeline variants a consistency check can run.
VARIANT_CONFIGS: dict[str, dict[str, object]] = {
    "standard": {},
    "counters-only": {"include_dxt": False},
    "monolithic": {"strategy": "monolithic"},
}

_SEVERITY_RANK = {
    Severity.OK: 0,
    Severity.INFO: 1,
    Severity.WARNING: 2,
    Severity.CRITICAL: 3,
}


@dataclass
class IssueConsistency:
    """Agreement analysis for one issue type."""

    issue: IssueType
    severities: dict[str, Severity]
    voted: Severity

    @property
    def consistent(self) -> bool:
        """Whether every variant reached the same severity."""
        return len(set(self.severities.values())) == 1

    @property
    def detection_consistent(self) -> bool:
        """Whether every variant agreed on flagged-vs-not."""
        flags = {severity.flagged for severity in self.severities.values()}
        return len(flags) == 1

    @property
    def disagreeing_variants(self) -> list[str]:
        """Variants whose severity differs from the vote."""
        return sorted(
            name
            for name, severity in self.severities.items()
            if severity != self.voted
        )


@dataclass
class ConsistencyReport:
    """The outcome of a multi-variant consistency check."""

    trace_name: str
    variants: tuple[str, ...]
    issues: list[IssueConsistency]
    reports: dict[str, DiagnosisReport] = field(default_factory=dict)

    @property
    def agreement_rate(self) -> float:
        """Fraction of issues on which all variants agreed exactly."""
        if not self.issues:
            return 1.0
        return sum(1 for item in self.issues if item.consistent) / len(self.issues)

    @property
    def detection_agreement_rate(self) -> float:
        """Fraction of issues agreeing on flagged-vs-not."""
        if not self.issues:
            return 1.0
        return sum(
            1 for item in self.issues if item.detection_consistent
        ) / len(self.issues)

    @property
    def inconsistent_issues(self) -> list[IssueConsistency]:
        return [item for item in self.issues if not item.consistent]

    @property
    def voted_detections(self) -> set[IssueType]:
        """Issues flagged by the majority vote."""
        return {item.issue for item in self.issues if item.voted.flagged}

    def consistency_for(self, issue: IssueType) -> IssueConsistency:
        for item in self.issues:
            if item.issue == issue:
                return item
        raise KeyError(f"no consistency entry for {issue}")


def vote(severities: list[Severity]) -> Severity:
    """Majority severity; ties resolve toward the more severe verdict.

    Resolving ties upward is the conservative choice for a diagnosis
    tool: when the ensemble is split, surface the potential issue rather
    than hide it.
    """
    if not severities:
        raise AnalysisError("cannot vote over zero severities")
    counts = Counter(severities)
    best = max(
        counts.items(), key=lambda item: (item[1], _SEVERITY_RANK[item[0]])
    )
    return best[0]


class ConsistencyChecker:
    """Runs several pipeline variants and compares their diagnoses."""

    def __init__(
        self,
        client: LLMClient | None = None,
        variants: tuple[str, ...] = ("standard", "counters-only"),
        base_config: AnalyzerConfig | None = None,
    ) -> None:
        unknown = [v for v in variants if v not in VARIANT_CONFIGS]
        if unknown:
            raise AnalysisError(f"unknown consistency variants: {unknown}")
        if len(variants) < 2:
            raise AnalysisError("consistency checking needs >= 2 variants")
        self.client = client
        self.variants = tuple(variants)
        self.base_config = base_config or AnalyzerConfig(summarize=False)

    def _config_for(self, variant: str) -> AnalyzerConfig:
        base = self.base_config
        overrides = dict(VARIANT_CONFIGS[variant])
        return AnalyzerConfig(
            strategy=str(overrides.get("strategy", base.strategy)),
            include_context=base.include_context,
            include_dxt=bool(overrides.get("include_dxt", base.include_dxt)),
            context_source=base.context_source,
            retrieval_k=base.retrieval_k,
            issues=base.issues,
            max_tool_rounds=base.max_tool_rounds,
            parallel_prompts=base.parallel_prompts,
            summarize=False,
        )

    def check(
        self, extraction: ExtractionResult, trace_name: str = "trace"
    ) -> ConsistencyReport:
        """Diagnose through every variant and compare severities."""
        reports: dict[str, DiagnosisReport] = {}
        for variant in self.variants:
            analyzer = Analyzer(
                client=self.client, config=self._config_for(variant)
            )
            reports[variant] = analyzer.analyze(extraction, trace_name)
        issues = []
        for issue in self.base_config.issues:
            severities = {
                variant: reports[variant].diagnosis_for(issue).severity
                for variant in self.variants
            }
            issues.append(
                IssueConsistency(
                    issue=issue,
                    severities=severities,
                    voted=vote(list(severities.values())),
                )
            )
        return ConsistencyReport(
            trace_name=trace_name,
            variants=self.variants,
            issues=issues,
            reports=reports,
        )
