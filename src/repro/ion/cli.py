"""``ion`` command-line interface.

Usage::

    ion TRACE.darshan [--strategy divide|monolithic] [--no-context]
                      [--show-code] [--ask QUESTION ...] [--workdir DIR]
"""

from __future__ import annotations

import argparse
import sys

from repro.ion.analyzer import AnalyzerConfig
from repro.ion.pipeline import IoNavigator
from repro.ion.report import render_report
from repro.util.console import suppress_broken_pipe
from repro.util.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ion",
        description=(
            "ION: diagnose HPC I/O issues from a Darshan trace using an "
            "LLM analysis pipeline (reproduction)."
        ),
    )
    parser.add_argument("trace", help="path to a binary Darshan log")
    parser.add_argument(
        "--strategy",
        choices=("divide", "monolithic"),
        default="divide",
        help="prompting strategy (default: divide-and-conquer)",
    )
    parser.add_argument(
        "--no-context",
        action="store_true",
        help="omit issue contexts from prompts (ablation)",
    )
    parser.add_argument(
        "--show-code",
        action="store_true",
        help="include generated analysis code in the report",
    )
    parser.add_argument(
        "--ask",
        action="append",
        default=[],
        metavar="QUESTION",
        help="ask a follow-up question after the diagnosis (repeatable)",
    )
    parser.add_argument(
        "--workdir", default=None, help="directory for extracted CSVs"
    )
    parser.add_argument(
        "--html", default=None, metavar="PATH",
        help="also write the report as a self-contained HTML file",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the report as JSON",
    )
    parser.add_argument(
        "--consistency", action="store_true",
        help="cross-check the diagnosis through counters-only and "
             "monolithic variants and report disagreements",
    )
    return parser


@suppress_broken_pipe
def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = AnalyzerConfig(
        strategy=args.strategy, include_context=not args.no_context
    )
    with IoNavigator(config=config, workdir=args.workdir) as navigator:
        try:
            result = navigator.diagnose_file(args.trace)
        except (ReproError, OSError) as exc:
            print(f"ion: error: {exc}", file=sys.stderr)
            return 1
        return _emit(args, result)


def _emit(args: argparse.Namespace, result) -> int:
    print(render_report(result.report, show_code=args.show_code))
    for question in args.ask:
        print(f"Q: {question}")
        print(f"A: {result.session.ask(question)}")
        print()
    if args.consistency:
        from repro.ion.consistency import ConsistencyChecker

        checker = ConsistencyChecker(
            variants=("standard", "counters-only", "monolithic")
        )
        consistency = checker.check(result.extraction, result.report.trace_name)
        print("--- Consistency check ---")
        print(
            f"agreement: {consistency.agreement_rate:.2f} "
            f"(detection: {consistency.detection_agreement_rate:.2f})"
        )
        for item in consistency.inconsistent_issues:
            votes = ", ".join(
                f"{variant}={severity.value}"
                for variant, severity in sorted(item.severities.items())
            )
            print(f"  {item.issue.title}: {votes} -> voted {item.voted.value}")
    if args.html:
        from repro.ion.htmlreport import write_html

        path = write_html(result.report, args.html, session=result.session)
        print(f"HTML report written to {path}")
    if args.json:
        from repro.ion.serialize import dump_report

        path = dump_report(result.report, args.json)
        print(f"JSON report written to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
