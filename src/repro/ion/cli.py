"""``ion`` command-line interface.

Usage::

    ion TRACE.darshan [--strategy divide|monolithic] [--no-context]
                      [--show-code] [--ask QUESTION ...] [--workdir DIR]
"""

from __future__ import annotations

import argparse
import sys

from repro.ion.analyzer import AnalyzerConfig
from repro.ion.pipeline import IoNavigator
from repro.ion.report import render_report
from repro.obs.cli import add_tracing_args, emit_telemetry, tracer_from_args
from repro.util.console import suppress_broken_pipe
from repro.util.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ion",
        description=(
            "ION: diagnose HPC I/O issues from a Darshan trace using an "
            "LLM analysis pipeline (reproduction)."
        ),
    )
    parser.add_argument("trace", help="path to a binary Darshan log")
    parser.add_argument(
        "--strategy",
        choices=("divide", "monolithic"),
        default="divide",
        help="prompting strategy (default: divide-and-conquer)",
    )
    parser.add_argument(
        "--no-context",
        action="store_true",
        help="omit issue contexts from prompts (ablation)",
    )
    parser.add_argument(
        "--show-code",
        action="store_true",
        help="include generated analysis code in the report",
    )
    parser.add_argument(
        "--ask",
        action="append",
        default=[],
        metavar="QUESTION",
        help="ask a follow-up question after the diagnosis (repeatable)",
    )
    parser.add_argument(
        "--workdir", default=None, help="directory for extracted CSVs"
    )
    parser.add_argument(
        "--html", default=None, metavar="PATH",
        help="also write the report as a self-contained HTML file",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the report as JSON",
    )
    parser.add_argument(
        "--consistency", action="store_true",
        help="cross-check the diagnosis through counters-only and "
             "monolithic variants and report disagreements",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="retry budget per LLM query (default: 3)",
    )
    parser.add_argument(
        "--query-deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per LLM query including retries "
             "(default: 30)",
    )
    parser.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="chaos-testing aid: inject deterministic LLM/interpreter "
             "faults, e.g. 'transient', 'timeout:0.3', "
             "'malformed:0.5:seed=7', 'interpreter_crash', 'guard_reject' "
             "(failed queries degrade to Drishti heuristics)",
    )
    add_guard_arg(parser)
    add_tracing_args(parser)
    return parser


def add_guard_arg(parser: argparse.ArgumentParser) -> None:
    """Add the shared ``--guard`` flag (static code vetting policy)."""
    parser.add_argument(
        "--guard",
        choices=("off", "warn", "enforce"),
        default="enforce",
        help="static vetting of model-generated code before execution "
             "(default: enforce; 'warn' counts violations but executes, "
             "'off' disables the guard)",
    )


def resilience_from_args(args: argparse.Namespace):
    """Build the analyzer ResilienceConfig the CLI flags describe."""
    from repro.ion.analyzer import ResilienceConfig

    overrides = {}
    if args.max_attempts is not None:
        overrides["max_attempts"] = args.max_attempts
    if args.query_deadline is not None:
        overrides["query_deadline"] = args.query_deadline
    return ResilienceConfig(**overrides)


def fault_injection_from_args(args: argparse.Namespace):
    """``(wrap_client, interpreter_factory)`` for ``--inject-faults``."""
    if args.inject_faults is None:
        return (lambda client: client), None
    from repro.llm.faults import (
        INTERPRETER_FAULT_KINDS,
        FaultPlan,
        FaultyCodeInterpreter,
        FaultyLLMClient,
        parse_fault_kind,
    )
    from repro.llm.interpreter import CodeInterpreter

    plan = FaultPlan.parse(args.inject_faults)
    if parse_fault_kind(args.inject_faults) in INTERPRETER_FAULT_KINDS:
        guard = getattr(args, "guard", "enforce")
        return (lambda client: client), (
            lambda workdir: FaultyCodeInterpreter(
                CodeInterpreter(workdir, guard=guard), plan
            )
        )
    return (lambda client: FaultyLLMClient(client, plan)), None


@suppress_broken_pipe
def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = AnalyzerConfig(
            strategy=args.strategy,
            include_context=not args.no_context,
            resilience=resilience_from_args(args),
            guard=args.guard,
        )
        wrap_client, interpreter_factory = fault_injection_from_args(args)
    except ReproError as exc:
        print(f"ion: error: {exc}", file=sys.stderr)
        return 1
    from repro.llm.expert.model import SimulatedExpertLLM

    tracer = tracer_from_args(args)
    with IoNavigator(
        client=wrap_client(SimulatedExpertLLM()),
        config=config,
        workdir=args.workdir,
        interpreter_factory=interpreter_factory,
        tracer=tracer,
    ) as navigator:
        try:
            result = navigator.diagnose_file(args.trace)
        except (ReproError, OSError) as exc:
            print(f"ion: error: {exc}", file=sys.stderr)
            return 1
        status = _emit(args, result, tracer=tracer)
        emit_telemetry(args, tracer, navigator.metrics)
        return status


def _emit(args: argparse.Namespace, result, tracer=None) -> int:
    print(render_report(result.report, show_code=args.show_code))
    for question in args.ask:
        print(f"Q: {question}")
        print(f"A: {result.session.ask(question)}")
        print()
    if args.consistency:
        from repro.ion.consistency import ConsistencyChecker

        checker = ConsistencyChecker(
            variants=("standard", "counters-only", "monolithic")
        )
        consistency = checker.check(result.extraction, result.report.trace_name)
        print("--- Consistency check ---")
        print(
            f"agreement: {consistency.agreement_rate:.2f} "
            f"(detection: {consistency.detection_agreement_rate:.2f})"
        )
        for item in consistency.inconsistent_issues:
            votes = ", ".join(
                f"{variant}={severity.value}"
                for variant, severity in sorted(item.severities.items())
            )
            print(f"  {item.issue.title}: {votes} -> voted {item.voted.value}")
    if args.html:
        from repro.ion.htmlreport import write_html
        from repro.obs.summary import stage_rows

        timings = None
        if tracer is not None and tracer.enabled:
            timings = stage_rows(tracer.spans())
        path = write_html(
            result.report, args.html, session=result.session, timings=timings
        )
        print(f"HTML report written to {path}")
    if args.json:
        from repro.ion.serialize import dump_report

        path = dump_report(result.report, args.json)
        print(f"JSON report written to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
