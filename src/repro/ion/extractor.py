"""The ION Extractor: Darshan log -> per-module CSV files.

Mirrors the paper's design: the general parser output becomes one CSV
per module present in the log (``POSIX.csv``, ``MPI-IO.csv``,
``STDIO.csv``, ``LUSTRE.csv``), each row a unique (file, rank) pair
with one column per Darshan counter; the DXT parser output becomes
``DXT.csv`` with one row per traced read/write operation.

The extractor also distills the *system parameters* the Analyzer
injects into prompts (rank count, stripe and RPC sizes) — stripe
geometry is read out of the LUSTRE module records rather than asked of
the user, a step the paper lists as future work.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.darshan.binformat import read_log
from repro.darshan.counters import counters_for, fcounters_for
from repro.darshan.log import DarshanLog
from repro.obs.trace import NULL_TRACER
from repro.util.csvio import write_rows
from repro.util.errors import ExtractionError
from repro.util.metrics import MetricsRegistry
from repro.util.units import MIB

DXT_COLUMNS = (
    "module",
    "rank",
    "operation",
    "segment",
    "offset",
    "length",
    "start",
    "end",
    "file_id",
    "file",
)

_BASE_COLUMNS = ("file_id", "rank", "file")


@dataclass
class ExtractionResult:
    """Everything the Analyzer needs to build prompts."""

    directory: Path
    csv_paths: dict[str, Path]
    columns: dict[str, list[str]]
    row_counts: dict[str, int]
    system: dict[str, object] = field(default_factory=dict)

    def has_module(self, module: str) -> bool:
        """Whether a module CSV was produced (including ``DXT``)."""
        return module in self.csv_paths

    def path_for(self, module: str) -> Path:
        """The CSV path of one module."""
        try:
            return self.csv_paths[module]
        except KeyError:
            raise ExtractionError(f"no CSV extracted for module {module!r}") from None


class Extractor:
    """Unpacks Darshan logs into the Analyzer's CSV interchange format."""

    def __init__(
        self,
        rpc_size: int = 4 * MIB,
        metrics: MetricsRegistry | None = None,
        tracer=None,
    ) -> None:
        # The RPC size is not recorded in Darshan logs; like the paper,
        # it enters as a system hyper-parameter (default: Lustre's 4 MiB).
        self.rpc_size = rpc_size
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer or NULL_TRACER

    def extract_file(self, log_path: str | Path, out_dir: str | Path) -> ExtractionResult:
        """Parse a binary log file and extract its CSVs."""
        return self.extract(read_log(log_path), out_dir)

    def extract(self, log: DarshanLog, out_dir: str | Path) -> ExtractionResult:
        """Extract CSVs for every module present in ``log``."""
        with self.tracer.span("extractor.extract") as span:
            with self.metrics.timer("extractor.extract.seconds").time():
                result = self._extract(log, out_dir)
            for module in sorted(result.row_counts):
                span.add_event(
                    "csv.emit", module=module, rows=result.row_counts[module]
                )
            span.set_attribute("modules", len(result.csv_paths))
            span.set_attribute("rows", sum(result.row_counts.values()))
        self.metrics.counter("extractor.extractions").inc()
        self.metrics.counter("extractor.rows").inc(sum(result.row_counts.values()))
        return result

    def _extract(self, log: DarshanLog, out_dir: str | Path) -> ExtractionResult:
        # Resolved so the CSV paths quoted in prompts stay valid inside
        # the code interpreter's sandbox, whose relative-path handling
        # is anchored to the extraction directory itself.
        directory = Path(out_dir).resolve()
        directory.mkdir(parents=True, exist_ok=True)
        csv_paths: dict[str, Path] = {}
        columns: dict[str, list[str]] = {}
        row_counts: dict[str, int] = {}
        for module in log.modules:
            path = directory / f"{module}.csv"
            fieldnames = list(_BASE_COLUMNS) + list(counters_for(module)) + list(
                fcounters_for(module)
            )
            rows = (
                {
                    "file_id": record.record_id,
                    "rank": record.rank,
                    "file": log.path_for(record.record_id),
                    **record.counters,
                    **{k: f"{v:.9f}" for k, v in record.fcounters.items()},
                }
                for record in log.records[module]
            )
            row_counts[module] = write_rows(path, fieldnames, rows)
            csv_paths[module] = path
            columns[module] = fieldnames
        if log.has_dxt:
            path = directory / "DXT.csv"
            segment_index: Counter[tuple[str, int, int]] = Counter()

            def dxt_rows():
                for seg in log.dxt_segments:
                    key = (seg.module, seg.record_id, seg.rank)
                    index = segment_index[key]
                    segment_index[key] += 1
                    yield {
                        "module": seg.module,
                        "rank": seg.rank,
                        "operation": seg.operation,
                        "segment": index,
                        "offset": seg.offset,
                        "length": seg.length,
                        "start": f"{seg.start_time:.9f}",
                        "end": f"{seg.end_time:.9f}",
                        "file_id": seg.record_id,
                        "file": log.path_for(seg.record_id),
                    }

            row_counts["DXT"] = write_rows(path, DXT_COLUMNS, dxt_rows())
            csv_paths["DXT"] = path
            columns["DXT"] = list(DXT_COLUMNS)
        if not csv_paths:
            raise ExtractionError("log contains no module records to extract")
        return ExtractionResult(
            directory=directory,
            csv_paths=csv_paths,
            columns=columns,
            row_counts=row_counts,
            system=self._system_parameters(log),
        )

    def _system_parameters(self, log: DarshanLog) -> dict[str, object]:
        """Distill prompt-level system facts from the log."""
        system: dict[str, object] = {
            "nprocs": log.job.nprocs,
            "run_time_seconds": round(log.job.run_time, 6),
            "rpc_size": self.rpc_size,
            "executable": log.job.executable,
        }
        stripe_sizes = [
            record.counters["LUSTRE_STRIPE_SIZE"]
            for record in log.records.get("LUSTRE", [])
        ]
        stripe_widths = [
            record.counters["LUSTRE_STRIPE_WIDTH"]
            for record in log.records.get("LUSTRE", [])
        ]
        if stripe_sizes:
            # Dominant stripe size across files; per-file values remain
            # available to analysis code through LUSTRE.csv.
            size_counts = Counter(stripe_sizes)
            system["lustre_stripe_size"] = size_counts.most_common(1)[0][0]
            system["lustre_stripe_width"] = Counter(stripe_widths).most_common(1)[0][0]
        else:
            posix = log.records.get("POSIX", [])
            if posix:
                system["lustre_stripe_size"] = posix[0].counters[
                    "POSIX_FILE_ALIGNMENT"
                ]
        return system
