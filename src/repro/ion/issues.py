"""The I/O issue taxonomy shared by ION, Drishti, and the evaluation.

The paper's ground-truth table (Figure 2) and tool-comparison table
(Figure 3) talk about the same nine issue families Drishti reports; ION
additionally attaches *mitigation notes* — conditions under which a
nominally-present issue does not actually hurt (small-but-consecutive
I/O can be aggregated, a shared file without overlapping extents incurs
no lock conflicts, and so on).  Those notes are the paper's headline
qualitative win over trigger-based tools, so they are first-class here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class IssueType(enum.Enum):
    """The nine I/O issue families diagnosed in the paper's evaluation."""

    SMALL_IO = "small_io"
    MISALIGNED_IO = "misaligned_io"
    RANDOM_ACCESS = "random_access"
    SHARED_FILE_CONTENTION = "shared_file_contention"
    LOAD_IMBALANCE = "load_imbalance"
    METADATA_LOAD = "metadata_load"
    NO_MPIIO = "no_mpiio"
    NO_COLLECTIVE = "no_collective"
    RANK_ZERO_BOTTLENECK = "rank_zero_bottleneck"

    @property
    def title(self) -> str:
        """Human-readable issue name used in prompts and reports."""
        return _TITLES[self]


_TITLES = {
    IssueType.SMALL_IO: "Small I/O Operations",
    IssueType.MISALIGNED_IO: "Misaligned I/O",
    IssueType.RANDOM_ACCESS: "Random Access Pattern",
    IssueType.SHARED_FILE_CONTENTION: "Shared-File Contention",
    IssueType.LOAD_IMBALANCE: "Imbalanced I/O Load",
    IssueType.METADATA_LOAD: "Excessive Metadata Load",
    IssueType.NO_MPIIO: "POSIX-only I/O Despite Multiple Ranks",
    IssueType.NO_COLLECTIVE: "MPI-IO Without Collective Operations",
    IssueType.RANK_ZERO_BOTTLENECK: "Rank 0 Bottleneck",
}


class MitigationNote(enum.Enum):
    """Contextual conditions that soften an issue's impact.

    These are the "...but" clauses in ION's Figure 2/3 outputs: the
    issue pattern is present, yet some property of the workload means
    its cost is partially or wholly avoided.
    """

    AGGREGATABLE = "aggregatable"  # small ops are consecutive: client can merge
    NON_OVERLAPPING = "non_overlapping"  # shared file but disjoint stripes
    LOW_VOLUME = "low_volume"  # few ops / little data: impact bounded
    ALGORITHMIC_SKEW = "algorithmic_skew"  # subset imbalance looks intentional

    @property
    def title(self) -> str:
        return _MITIGATION_TITLES[self]


_MITIGATION_TITLES = {
    MitigationNote.AGGREGATABLE: "small operations are consecutive and aggregatable",
    MitigationNote.NON_OVERLAPPING: "shared-file accesses do not overlap in stripes",
    MitigationNote.LOW_VOLUME: "affected operation count and volume are low",
    MitigationNote.ALGORITHMIC_SKEW: "imbalance appears inherent to the algorithm",
}


class Severity(enum.Enum):
    """How strongly a diagnosis flags an issue."""

    OK = "ok"  # examined, not present
    INFO = "info"  # present but fully mitigated / informational
    WARNING = "warning"  # present, likely hurting performance
    CRITICAL = "critical"  # present and dominating performance

    @property
    def flagged(self) -> bool:
        """Whether this severity counts as a positive detection."""
        return self in (Severity.WARNING, Severity.CRITICAL)


@dataclass
class Diagnosis:
    """The outcome of analyzing one issue type over one trace."""

    issue: IssueType
    severity: Severity
    conclusion: str
    steps: list[str] = field(default_factory=list)
    code: str = ""
    code_output: str = ""
    evidence: dict[str, object] = field(default_factory=dict)
    mitigations: list[MitigationNote] = field(default_factory=list)
    #: True when the LLM query for this issue failed and the result is
    #: a degraded-mode substitute (see ``fallback_source``).
    degraded: bool = False
    #: Why the LLM path failed (e.g. ``"LLMTimeoutError: ..."``).
    degraded_reason: str = ""
    #: Which degraded-mode oracle produced the result: ``"drishti"``
    #: for the heuristic trigger fallback, ``"none"`` when no fallback
    #: was possible, ``""`` for healthy LLM results.
    fallback_source: str = ""

    @property
    def detected(self) -> bool:
        """Whether the issue was flagged as actually present and harmful."""
        return self.severity.flagged

    @property
    def observed(self) -> bool:
        """Whether the pattern was seen at all (even if mitigated)."""
        return self.severity != Severity.OK


@dataclass
class ReportHealth:
    """How the LLM pipeline behaved while producing one report.

    ``queries`` counts logical LLM queries (one per issue, plus the
    summarization query when enabled); ``attempts`` counts every
    dispatch including retries, so ``retries == attempts - queries``
    when nothing short-circuits.  ``degraded`` queries exhausted their
    retry budget (or hit an open breaker) and fell back —
    ``fallbacks`` of them to the Drishti heuristic oracle.
    """

    queries: int = 0
    attempts: int = 0
    retries: int = 0
    degraded: int = 0
    fallbacks: int = 0
    breaker_state: str = "closed"
    breaker_trips: int = 0
    #: One ``"<stage>: <reason>"`` entry per degraded query.
    notes: list[str] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """Whether every query was answered by the LLM path itself."""
        return self.degraded == 0 and self.breaker_trips == 0


@dataclass
class DiagnosisReport:
    """Everything the ION analyzer produced for one trace."""

    trace_name: str
    diagnoses: list[Diagnosis]
    summary: str = ""
    health: ReportHealth | None = None

    def diagnosis_for(self, issue: IssueType) -> Diagnosis:
        """Look up the diagnosis of one issue type."""
        for diagnosis in self.diagnoses:
            if diagnosis.issue == issue:
                return diagnosis
        raise KeyError(f"no diagnosis for {issue}")

    @property
    def detected_issues(self) -> set[IssueType]:
        """Issues flagged as present and harmful."""
        return {d.issue for d in self.diagnoses if d.detected}

    @property
    def observed_issues(self) -> set[IssueType]:
        """Issues whose pattern was observed, harmful or mitigated."""
        return {d.issue for d in self.diagnoses if d.observed}

    @property
    def degraded_issues(self) -> set[IssueType]:
        """Issues whose diagnosis came from a degraded-mode fallback."""
        return {d.issue for d in self.diagnoses if d.degraded}

    @property
    def mitigation_notes(self) -> set[MitigationNote]:
        """Every mitigation note attached anywhere in the report."""
        notes: set[MitigationNote] = set()
        for diagnosis in self.diagnoses:
            notes.update(diagnosis.mitigations)
        return notes
