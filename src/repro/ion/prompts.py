"""Prompt construction for the ION Analyzer.

One prompt per issue type (the divide-and-conquer strategy the paper
converged on), each assembled from four blocks:

1. the issue's *I/O Performance Issue Context* (domain knowledge),
2. system parameters (rank count, stripe/RPC sizes — facts, not tuned
   thresholds),
3. descriptions of the extracted CSV files, filtered to the modules the
   issue needs,
4. an output-format block demanding chain-of-thought steps, runnable
   analysis code, and a tagged conclusion.

``build_monolithic_prompt`` builds the single voluminous prompt the
paper found to overwhelm even strong models; it exists for the ABL1
ablation.
"""

from __future__ import annotations

from repro.ion.contexts import IssueContext
from repro.ion.extractor import ExtractionResult
from repro.ion.issues import IssueType

#: Issues whose analysis benefits from per-operation DXT data.
DXT_ISSUES = frozenset(
    {IssueType.RANDOM_ACCESS, IssueType.SHARED_FILE_CONTENTION}
)

ASSISTANT_INSTRUCTIONS = """\
You are ION, an expert high-performance-computing I/O performance
analyst. You are given extracts of a Darshan trace as CSV files plus
domain context about one class of I/O performance issue. Analyze the
trace strictly through measurements: reason step by step, write Python
code against the listed CSV files, run it, and ground every claim in
the numbers your code prints. Never invent metrics. If your code
fails, debug it and run again. Conclude with a diagnosis a domain
scientist can act on.
"""

OUTPUT_FORMAT = """\
## Output Format
Respond with, in order:
1. A "Diagnosis Steps:" section with numbered reasoning steps (chain of
   thought) describing how you will test for the issue.
2. Python analysis code, executed via the code interpreter, that reads
   only the files listed above and prints exactly one JSON object of
   measured metrics.
3. A "Conclusion:" paragraph grounded in the measured metrics, ending
   with the tags [severity=ok|info|warning|critical] and, when
   applicable, [mitigations=<comma-separated notes>].
"""

QUESTION_OUTPUT_FORMAT = """\
## Output Format
Answer the question directly, citing the measured metrics from the
diagnosis context. Do not speculate beyond the trace.
"""


def _system_block(extraction: ExtractionResult) -> str:
    lines = ["## System Parameters"]
    for key in sorted(extraction.system):
        lines.append(f"- {key}: {extraction.system[key]}")
    return "\n".join(lines)


def _files_block(extraction: ExtractionResult, modules: list[str]) -> str:
    lines = ["## Available Trace Files"]
    for module in modules:
        if not extraction.has_module(module):
            continue
        lines.append(f"- module: {module}")
        lines.append(f"  path: {extraction.path_for(module)}")
        lines.append(f"  rows: {extraction.row_counts[module]}")
        lines.append(f"  columns: {', '.join(extraction.columns[module])}")
    if len(lines) == 1:
        lines.append("(no trace files available)")
    return "\n".join(lines)


def modules_for_issue(
    context: IssueContext,
    extraction: ExtractionResult,
    include_dxt: bool = True,
) -> list[str]:
    """The module CSVs an issue's prompt should describe."""
    modules = [m for m in context.required_modules if extraction.has_module(m)]
    if include_dxt and context.issue in DXT_ISSUES and extraction.has_module("DXT"):
        modules.append("DXT")
    return modules


def build_issue_prompt(
    trace_name: str,
    context: IssueContext,
    extraction: ExtractionResult,
    include_context: bool = True,
    include_dxt: bool = True,
) -> str:
    """One divide-and-conquer diagnosis prompt for one issue."""
    parts = [
        "# ION I/O Diagnosis Request",
        f"Trace: {trace_name}",
        f"## Target Issue: {context.title}",
    ]
    if include_context:
        parts.append(f"## Issue Context: {context.title}\n{context.text}")
    parts.append(_system_block(extraction))
    parts.append(
        _files_block(
            extraction, modules_for_issue(context, extraction, include_dxt)
        )
    )
    parts.append(OUTPUT_FORMAT)
    return "\n\n".join(parts)


def build_monolithic_prompt(
    trace_name: str,
    contexts: list[IssueContext],
    extraction: ExtractionResult,
    include_context: bool = True,
    include_dxt: bool = True,
) -> str:
    """The single voluminous prompt covering every issue (ABL1)."""
    titles = ", ".join(context.title for context in contexts)
    parts = [
        "# ION I/O Diagnosis Request",
        f"Trace: {trace_name}",
        f"## Target Issues: {titles}",
    ]
    if include_context:
        for context in contexts:
            parts.append(f"## Issue Context: {context.title}\n{context.text}")
    modules: list[str] = []
    for context in contexts:
        for module in modules_for_issue(context, extraction, include_dxt):
            if module not in modules:
                modules.append(module)
    parts.append(_system_block(extraction))
    parts.append(_files_block(extraction, modules))
    parts.append(OUTPUT_FORMAT)
    return "\n\n".join(parts)


def build_summary_prompt(
    trace_name: str, conclusions: list[tuple[IssueType, str]]
) -> str:
    """The summarization prompt combining all per-issue conclusions."""
    parts = [
        "# ION Summary Request",
        f"Trace: {trace_name}",
        "## Per-Issue Conclusions",
    ]
    for issue, conclusion in conclusions:
        parts.append(f"### {issue.title}\n{conclusion}")
    parts.append(
        "## Output Format\nWrite one global diagnosis summary for a domain "
        "scientist: lead with the issues that dominate performance, mention "
        "mitigated or absent patterns briefly, and end with the most "
        "impactful recommendation."
    )
    return "\n\n".join(parts)


def build_question_prompt(
    trace_name: str, digest: str, question: str
) -> str:
    """An interactive follow-up question over a finished diagnosis."""
    parts = [
        "# ION Interactive Question",
        f"Trace: {trace_name}",
        f"## Diagnosis Context\n{digest}",
        f"## Question\n{question}",
        QUESTION_OUTPUT_FORMAT,
    ]
    return "\n\n".join(parts)
