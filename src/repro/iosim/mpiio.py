"""Communicator-wide MPI-IO layer with ROMIO-style collective buffering.

Independent operations map one-to-one onto the caller's POSIX layer
(so, as with real Darshan, the same transfer appears in both the MPI-IO
and POSIX modules).  Collective operations implement two-phase I/O:

1. every rank enters (barrier),
2. contributions are coalesced into contiguous runs and carved into
   collective-buffer-sized, stripe-aligned chunks,
3. the chunks are dealt round-robin to ``cb_nodes`` aggregator ranks,
   which perform the actual POSIX transfers,
4. data is shuffled between contributors and aggregators over the
   interconnect model, and everyone leaves together (barrier).

This is what makes "the fix" for the paper's OpenPMD/E2E pathologies
expressible: a collective write of many tiny per-rank pieces reaches
the filesystem as a few large aligned writes issued by a rank subset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.iosim.job import SimulatedJob
from repro.util.errors import SimulationError
from repro.util.units import GIB


@dataclass(frozen=True)
class Contribution:
    """One rank's share of a collective operation."""

    rank: int
    offset: int
    length: int


@dataclass
class _Handle:
    path: str
    ranks: tuple[int, ...]
    fds: dict[int, int]  # rank -> posix fd


class MpiIoLayer:
    """MPI-IO semantics for all ranks of a simulated job."""

    def __init__(
        self,
        job: SimulatedJob,
        cb_nodes: int | None = None,
        cb_buffer_size: int | None = None,
        net_latency: float = 5e-6,
        net_bandwidth: float = 12.0 * GIB,
    ) -> None:
        self.job = job
        self._cb_nodes = cb_nodes
        self._cb_buffer_size = cb_buffer_size
        self._net_latency = net_latency
        self._net_bandwidth = net_bandwidth
        self._handles: dict[int, _Handle] = {}
        self._next_handle = 1

    # -- lifecycle ------------------------------------------------------

    def open(
        self,
        path: str,
        ranks: list[int] | None = None,
        collective: bool = True,
        stripe_size: int | None = None,
        stripe_count: int | None = None,
    ) -> int:
        """Open a file on a set of ranks (default: the whole job)."""
        members = tuple(ranks if ranks is not None else range(self.job.nprocs))
        if not members:
            raise SimulationError("MPI-IO open needs at least one rank")
        if collective:
            self.job.barrier(list(members))
        fds: dict[int, int] = {}
        for rank in members:
            posix = self.job.posix(rank)
            start = self.job.now(rank)
            fds[rank] = posix.open(
                path, create=True, stripe_size=stripe_size, stripe_count=stripe_count
            )
            inode = posix.inode(fds[rank])
            self.job.runtime.mpiio_open(
                inode, rank, collective, start, self.job.now(rank)
            )
        if collective:
            self.job.barrier(list(members))
        handle = self._next_handle
        self._next_handle += 1
        self._handles[handle] = _Handle(path=path, ranks=members, fds=fds)
        return handle

    def close(self, handle: int) -> None:
        """Collectively close the file on every participating rank."""
        h = self._lookup(handle)
        self.job.barrier(list(h.ranks))
        for rank in h.ranks:
            posix = self.job.posix(rank)
            start = self.job.now(rank)
            inode = posix.inode(h.fds[rank])
            posix.close(h.fds[rank])
            self.job.runtime.mpiio_close(inode, rank, start, self.job.now(rank))
        self.job.barrier(list(h.ranks))
        del self._handles[handle]

    def sync(self, handle: int) -> None:
        """MPI_File_sync on every rank."""
        h = self._lookup(handle)
        for rank in h.ranks:
            posix = self.job.posix(rank)
            start = self.job.now(rank)
            posix.fsync(h.fds[rank])
            inode = posix.inode(h.fds[rank])
            self.job.runtime.mpiio_sync(inode, rank, start, self.job.now(rank))

    # -- independent operations -----------------------------------------

    def write_at(
        self, handle: int, rank: int, offset: int, length: int,
        mem_aligned: bool = True, nonblocking: bool = False,
    ) -> None:
        """MPI_File_write_at (or iwrite when ``nonblocking``)."""
        self._independent(handle, rank, "write", offset, length, mem_aligned, nonblocking)

    def read_at(
        self, handle: int, rank: int, offset: int, length: int,
        mem_aligned: bool = True, nonblocking: bool = False,
    ) -> None:
        """MPI_File_read_at (or iread when ``nonblocking``)."""
        self._independent(handle, rank, "read", offset, length, mem_aligned, nonblocking)

    def _independent(
        self,
        handle: int,
        rank: int,
        operation: str,
        offset: int,
        length: int,
        mem_aligned: bool,
        nonblocking: bool,
    ) -> None:
        h = self._lookup(handle)
        if rank not in h.fds:
            raise SimulationError(f"rank {rank} did not open handle {handle}")
        posix = self.job.posix(rank)
        start = self.job.now(rank)
        if operation == "write":
            posix.pwrite(h.fds[rank], length, offset, mem_aligned=mem_aligned)
        else:
            posix.pread(h.fds[rank], length, offset, mem_aligned=mem_aligned)
        inode = posix.inode(h.fds[rank])
        flavor = "nb" if nonblocking else "indep"
        self.job.runtime.mpiio_io(
            inode, rank, flavor, operation, offset, length, start, self.job.now(rank)
        )

    # -- collective operations --------------------------------------------

    def write_at_all(
        self, handle: int, contributions: list[Contribution]
    ) -> None:
        """MPI_File_write_at_all: two-phase collective write."""
        self._collective(handle, "write", contributions)

    def read_at_all(
        self, handle: int, contributions: list[Contribution]
    ) -> None:
        """MPI_File_read_at_all: two-phase collective read."""
        self._collective(handle, "read", contributions)

    def _collective(
        self, handle: int, operation: str, contributions: list[Contribution]
    ) -> None:
        h = self._lookup(handle)
        # A rank may contribute several extents in one call (a
        # non-contiguous filetype); its single collective operation
        # covers their combined length, anchored at the lowest offset.
        by_rank: dict[int, tuple[int, int]] = {}
        for contribution in contributions:
            if contribution.rank not in h.fds:
                raise SimulationError(
                    f"rank {contribution.rank} did not open handle {handle}"
                )
            offset, length = by_rank.get(
                contribution.rank, (contribution.offset, 0)
            )
            by_rank[contribution.rank] = (
                min(offset, contribution.offset),
                length + contribution.length,
            )
        members = list(h.ranks)
        entry = self.job.barrier(members)
        starts = {rank: entry for rank in members}

        aggregators = self._aggregators(h)
        chunks = self._plan_chunks(h, contributions)
        # Phase 1: shuffle data between contributors and aggregators.
        for contribution in contributions:
            cost = self._net_latency + contribution.length / self._net_bandwidth
            self.job.advance(
                contribution.rank, self.job.now(contribution.rank) + cost
            )
        # Phase 2: aggregators issue the filesystem transfers.
        for index, (offset, length) in enumerate(chunks):
            rank = aggregators[index % len(aggregators)]
            posix = self.job.posix(rank)
            if operation == "write":
                posix.pwrite(h.fds[rank], length, offset)
            else:
                posix.pread(h.fds[rank], length, offset)
        exit_time = self.job.barrier(members)
        # Record the logical collective op on every participating rank.
        for rank in members:
            posix = self.job.posix(rank)
            inode = posix.inode(h.fds[rank])
            offset, length = by_rank.get(rank, (0, 0))
            self.job.runtime.mpiio_io(
                inode, rank, "coll", operation, offset, length,
                starts[rank], exit_time,
            )

    def _aggregators(self, h: _Handle) -> list[int]:
        posix = self.job.posix(h.ranks[0])
        inode = posix.inode(h.fds[h.ranks[0]])
        default = min(len(h.ranks), inode.layout.stripe_count)
        count = self._cb_nodes or default
        count = max(1, min(count, len(h.ranks)))
        return list(h.ranks[:count])

    def _plan_chunks(
        self, h: _Handle, contributions: list[Contribution]
    ) -> list[tuple[int, int]]:
        """Coalesce contributions, then split on collective-buffer bounds."""
        if not contributions:
            return []
        posix = self.job.posix(h.ranks[0])
        inode = posix.inode(h.fds[h.ranks[0]])
        cb_size = self._cb_buffer_size or max(
            inode.layout.stripe_size, 1
        )
        extents = sorted(
            (c.offset, c.length) for c in contributions if c.length > 0
        )
        runs: list[list[int]] = []
        for offset, length in extents:
            if runs and offset <= runs[-1][1]:
                runs[-1][1] = max(runs[-1][1], offset + length)
            else:
                runs.append([offset, offset + length])
        chunks: list[tuple[int, int]] = []
        # File domains are carved relative to the start of each merged
        # run (as ROMIO divides [min, max] among aggregators), so a run
        # that begins at an unaligned offset — e.g. past a netCDF
        # header — produces unaligned aggregator transfers.
        for run_start, run_end in runs:
            position = run_start
            while position < run_end:
                chunk_end = min(run_end, position + cb_size)
                chunks.append((position, chunk_end - position))
                position = chunk_end
        return chunks

    def _lookup(self, handle: int) -> _Handle:
        try:
            return self._handles[handle]
        except KeyError:
            raise SimulationError(f"bad MPI-IO handle {handle}") from None
