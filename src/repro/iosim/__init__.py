"""I/O simulator: rank clocks, POSIX/STDIO/MPI-IO layers, Darshan runtime."""

from repro.iosim.job import SimulatedJob
from repro.iosim.mpiio import Contribution, MpiIoLayer
from repro.iosim.posix import PosixLayer
from repro.iosim.runtime import DarshanRuntime
from repro.iosim.stdio import StdioLayer

__all__ = [
    "Contribution",
    "DarshanRuntime",
    "MpiIoLayer",
    "PosixLayer",
    "SimulatedJob",
    "StdioLayer",
]
