"""Per-rank POSIX I/O layer over the simulated filesystem.

Mirrors the syscall surface Darshan's POSIX module wraps: ``open``,
``read``/``write`` (cursor-based), ``pread``/``pwrite`` (positioned),
``lseek``, ``stat``, ``fsync``, ``close``.  Every call advances the
rank's clock by the cost the filesystem charges and reports the event
to the Darshan runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.iosim.job import SimulatedJob
from repro.lustre.filesystem import Inode
from repro.util.errors import FilesystemError


@dataclass
class _OpenFile:
    inode: Inode
    position: int = 0


class PosixLayer:
    """POSIX syscalls for one rank of a simulated job."""

    def __init__(self, job: SimulatedJob, rank: int) -> None:
        if not 0 <= rank < job.nprocs:
            raise FilesystemError(f"rank {rank} out of range (nprocs={job.nprocs})")
        self.job = job
        self.rank = rank
        self._files: dict[int, _OpenFile] = {}
        self._next_fd = 3  # 0..2 are stdio, as on a real system

    # -- lifecycle ------------------------------------------------------

    def open(
        self,
        path: str,
        create: bool = True,
        stripe_size: int | None = None,
        stripe_count: int | None = None,
    ) -> int:
        """Open (optionally creating) a file; returns the fd."""
        start = self.job.now(self.rank)
        inode, completion = self.job.fs.open(
            path,
            start,
            create=create,
            stripe_size=stripe_size,
            stripe_count=stripe_count,
        )
        self.job.advance(self.rank, completion)
        self.job.runtime.posix_open(inode, self.rank, start, completion)
        fd = self._next_fd
        self._next_fd += 1
        self._files[fd] = _OpenFile(inode=inode)
        return fd

    def close(self, fd: int) -> None:
        """Close an fd."""
        open_file = self._lookup(fd)
        start = self.job.now(self.rank)
        completion = self.job.fs.close(open_file.inode, start)
        self.job.advance(self.rank, completion)
        self.job.runtime.posix_close(open_file.inode, self.rank, start, completion)
        del self._files[fd]

    # -- data -----------------------------------------------------------

    def pwrite(self, fd: int, length: int, offset: int, mem_aligned: bool = True) -> int:
        """Positioned write; returns bytes written."""
        return self._io(fd, "write", offset, length, mem_aligned, advance_cursor=False)

    def pread(self, fd: int, length: int, offset: int, mem_aligned: bool = True) -> int:
        """Positioned read; returns bytes read."""
        return self._io(fd, "read", offset, length, mem_aligned, advance_cursor=False)

    def write(self, fd: int, length: int, mem_aligned: bool = True) -> int:
        """Cursor write at the current file position."""
        open_file = self._lookup(fd)
        return self._io(
            fd, "write", open_file.position, length, mem_aligned, advance_cursor=True
        )

    def read(self, fd: int, length: int, mem_aligned: bool = True) -> int:
        """Cursor read at the current file position."""
        open_file = self._lookup(fd)
        return self._io(
            fd, "read", open_file.position, length, mem_aligned, advance_cursor=True
        )

    # -- metadata ---------------------------------------------------------

    def lseek(self, fd: int, offset: int) -> int:
        """Reposition the cursor (counted as a seek by Darshan)."""
        open_file = self._lookup(fd)
        if offset < 0:
            raise FilesystemError(f"cannot seek to negative offset {offset}")
        start = self.job.now(self.rank)
        completion = start + self.job.fs.config.costs.client_op_overhead
        self.job.advance(self.rank, completion)
        self.job.runtime.posix_meta(open_file.inode, self.rank, "seek", start, completion)
        open_file.position = offset
        return offset

    def stat(self, path: str) -> None:
        """Stat a path (MDS round trip)."""
        start = self.job.now(self.rank)
        completion = self.job.fs.stat(path, start)
        self.job.advance(self.rank, completion)
        inode = self.job.fs.lookup(path)
        self.job.runtime.posix_meta(inode, self.rank, "stat", start, completion)

    def fsync(self, fd: int) -> None:
        """Flush a file (charged as one metadata round trip per OST)."""
        open_file = self._lookup(fd)
        start = self.job.now(self.rank)
        costs = self.job.fs.config.costs
        completion = start + costs.rpc_latency * open_file.inode.layout.stripe_count
        self.job.advance(self.rank, completion)
        self.job.runtime.posix_meta(open_file.inode, self.rank, "fsync", start, completion)

    def tell(self, fd: int) -> int:
        """Current cursor position."""
        return self._lookup(fd).position

    def inode(self, fd: int) -> Inode:
        """The inode behind an fd (used by the MPI-IO layer)."""
        return self._lookup(fd).inode

    # -- internals --------------------------------------------------------

    def _lookup(self, fd: int) -> _OpenFile:
        try:
            return self._files[fd]
        except KeyError:
            raise FilesystemError(f"bad file descriptor {fd} on rank {self.rank}") from None

    def _io(
        self,
        fd: int,
        operation: str,
        offset: int,
        length: int,
        mem_aligned: bool,
        advance_cursor: bool,
    ) -> int:
        if length < 0:
            raise FilesystemError(f"{operation} length must be non-negative")
        open_file = self._lookup(fd)
        start = self.job.now(self.rank)
        result = self.job.fs.io(
            open_file.inode,
            self.rank,
            operation,
            offset,
            length,
            start,
            mem_aligned=mem_aligned,
        )
        self.job.advance(self.rank, result.completion)
        self.job.runtime.posix_io(
            open_file.inode,
            self.rank,
            operation,
            offset,
            length,
            start,
            result.completion,
            file_aligned=result.file_aligned,
            mem_aligned=result.mem_aligned,
        )
        if advance_cursor:
            open_file.position = offset + length
        return length
