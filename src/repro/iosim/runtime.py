"""Darshan instrumentation runtime for the simulator.

The I/O layers (:mod:`repro.iosim.posix`, ``mpiio``, ``stdio``) report
every operation here; the runtime folds the stream into per-(module,
file, rank) counter accumulators and optional DXT segments, exactly the
way the real Darshan runtime wraps libc/MPI calls.  At job end,
:meth:`DarshanRuntime.finalize` emits a complete :class:`DarshanLog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.darshan.counters import LUSTRE_MAX_OSTS
from repro.darshan.log import DarshanLog
from repro.darshan.records import DxtSegment, JobRecord, ModuleRecord, NameRecord
from repro.lustre.filesystem import Inode, LustreFilesystem
from repro.util.stats import SIZE_BIN_LABELS, CommonValueTracker, size_bin_index


@dataclass
class _IoPhase:
    """Shared accumulation for one direction (read or write)."""

    ops: int = 0
    bytes_moved: int = 0
    max_byte: int = -1
    consec: int = 0
    seq: int = 0
    total_time: float = 0.0
    max_time: float = 0.0
    start_ts: float = 0.0
    end_ts: float = 0.0
    bins: list[int] = field(default_factory=lambda: [0] * len(SIZE_BIN_LABELS))

    def add(self, offset: int, length: int, start: float, end: float) -> None:
        if self.ops == 0:
            self.start_ts = start
        self.end_ts = max(self.end_ts, end)
        self.ops += 1
        self.bytes_moved += length
        if length:
            self.max_byte = max(self.max_byte, offset + length - 1)
        duration = end - start
        self.total_time += duration
        self.max_time = max(self.max_time, duration)
        self.bins[size_bin_index(length)] += 1


@dataclass
class _PosixAccumulator:
    """Counters for one (POSIX, file, rank) record in flight."""

    opens: int = 0
    seeks: int = 0
    stats: int = 0
    fsyncs: int = 0
    mem_not_aligned: int = 0
    file_not_aligned: int = 0
    rw_switches: int = 0
    read: _IoPhase = field(default_factory=_IoPhase)
    write: _IoPhase = field(default_factory=_IoPhase)
    meta_time: float = 0.0
    open_start_ts: float = 0.0
    open_end_ts: float = 0.0
    close_start_ts: float = 0.0
    close_end_ts: float = 0.0
    last_op: str = ""
    next_offset: int = -1  # offset right after the previous access
    last_offset: int = -1  # start offset of the previous access
    accesses: CommonValueTracker = field(default_factory=CommonValueTracker)

    def record_io(
        self,
        operation: str,
        offset: int,
        length: int,
        start: float,
        end: float,
        file_aligned: bool,
        mem_aligned: bool,
    ) -> None:
        phase = self.read if operation == "read" else self.write
        # Darshan sequencing: "sequential" means at an offset no lower
        # than the previous access; "consecutive" means immediately
        # following it.  Both are per file per rank, across reads and
        # writes of the same record.
        if self.next_offset >= 0:
            if offset == self.next_offset:
                phase.consec += 1
            if offset >= self.last_offset:
                phase.seq += 1
        if self.last_op and self.last_op != operation:
            self.rw_switches += 1
        self.last_op = operation
        self.last_offset = offset
        self.next_offset = offset + length
        if not file_aligned:
            self.file_not_aligned += 1
        if not mem_aligned:
            self.mem_not_aligned += 1
        self.accesses.add(length)
        phase.add(offset, length, start, end)


@dataclass
class _MpiioAccumulator:
    """Counters for one (MPI-IO, file, rank) record in flight."""

    indep_opens: int = 0
    coll_opens: int = 0
    indep: dict[str, int] = field(default_factory=lambda: {"read": 0, "write": 0})
    coll: dict[str, int] = field(default_factory=lambda: {"read": 0, "write": 0})
    split: dict[str, int] = field(default_factory=lambda: {"read": 0, "write": 0})
    nb: dict[str, int] = field(default_factory=lambda: {"read": 0, "write": 0})
    syncs: int = 0
    rw_switches: int = 0
    last_op: str = ""
    read: _IoPhase = field(default_factory=_IoPhase)
    write: _IoPhase = field(default_factory=_IoPhase)
    meta_time: float = 0.0
    open_start_ts: float = 0.0
    open_end_ts: float = 0.0
    close_start_ts: float = 0.0
    close_end_ts: float = 0.0
    accesses: CommonValueTracker = field(default_factory=CommonValueTracker)

    def record_io(
        self,
        flavor: str,
        operation: str,
        offset: int,
        length: int,
        start: float,
        end: float,
    ) -> None:
        bucket = getattr(self, flavor)
        bucket[operation] += 1
        if self.last_op and self.last_op != operation:
            self.rw_switches += 1
        self.last_op = operation
        self.accesses.add(length)
        phase = self.read if operation == "read" else self.write
        phase.add(offset, length, start, end)


@dataclass
class _StdioAccumulator:
    """Counters for one (STDIO, file, rank) record in flight."""

    opens: int = 0
    seeks: int = 0
    flushes: int = 0
    read: _IoPhase = field(default_factory=_IoPhase)
    write: _IoPhase = field(default_factory=_IoPhase)
    meta_time: float = 0.0
    open_start_ts: float = 0.0
    close_start_ts: float = 0.0


class DarshanRuntime:
    """Accumulates instrumentation events and emits a DarshanLog."""

    def __init__(
        self,
        fs: LustreFilesystem,
        nprocs: int,
        job_id: int = 4000001,
        uid: int = 1001,
        executable: str = "simulated_app",
        enable_dxt: bool = True,
        metadata: dict[str, str] | None = None,
    ) -> None:
        self._fs = fs
        self._nprocs = nprocs
        self._job_id = job_id
        self._uid = uid
        self._executable = executable
        self._enable_dxt = enable_dxt
        self._metadata = dict(metadata or {})
        self._posix: dict[tuple[int, int], _PosixAccumulator] = {}
        self._mpiio: dict[tuple[int, int], _MpiioAccumulator] = {}
        self._stdio: dict[tuple[int, int], _StdioAccumulator] = {}
        self._names: dict[int, str] = {}
        self._lustre_files: dict[int, Inode] = {}
        self._dxt: list[DxtSegment] = []

    # -- registration hooks called by the I/O layers -------------------

    def _register(self, inode: Inode) -> None:
        self._names[inode.file_id] = inode.path
        self._lustre_files[inode.file_id] = inode

    def _posix_acc(self, inode: Inode, rank: int) -> _PosixAccumulator:
        self._register(inode)
        return self._posix.setdefault((inode.file_id, rank), _PosixAccumulator())

    def _mpiio_acc(self, inode: Inode, rank: int) -> _MpiioAccumulator:
        self._register(inode)
        return self._mpiio.setdefault((inode.file_id, rank), _MpiioAccumulator())

    def _stdio_acc(self, inode: Inode, rank: int) -> _StdioAccumulator:
        self._register(inode)
        return self._stdio.setdefault((inode.file_id, rank), _StdioAccumulator())

    def posix_open(self, inode: Inode, rank: int, start: float, end: float) -> None:
        acc = self._posix_acc(inode, rank)
        if acc.opens == 0:
            acc.open_start_ts = start
        acc.opens += 1
        acc.open_end_ts = max(acc.open_end_ts, end)
        acc.meta_time += end - start

    def posix_close(self, inode: Inode, rank: int, start: float, end: float) -> None:
        acc = self._posix_acc(inode, rank)
        if acc.close_start_ts == 0.0:
            acc.close_start_ts = start
        acc.close_end_ts = max(acc.close_end_ts, end)
        acc.meta_time += end - start

    def posix_meta(
        self, inode: Inode, rank: int, kind: str, start: float, end: float
    ) -> None:
        acc = self._posix_acc(inode, rank)
        if kind == "seek":
            acc.seeks += 1
        elif kind == "stat":
            acc.stats += 1
        elif kind == "fsync":
            acc.fsyncs += 1
        else:
            raise ValueError(f"unknown POSIX meta kind {kind!r}")
        acc.meta_time += end - start

    def posix_io(
        self,
        inode: Inode,
        rank: int,
        operation: str,
        offset: int,
        length: int,
        start: float,
        end: float,
        file_aligned: bool,
        mem_aligned: bool,
    ) -> None:
        acc = self._posix_acc(inode, rank)
        acc.record_io(operation, offset, length, start, end, file_aligned, mem_aligned)
        if self._enable_dxt:
            self._dxt.append(
                DxtSegment(
                    module="X_POSIX",
                    record_id=inode.file_id,
                    rank=rank,
                    operation=operation,
                    offset=offset,
                    length=length,
                    start_time=start,
                    end_time=end,
                )
            )

    def mpiio_open(
        self, inode: Inode, rank: int, collective: bool, start: float, end: float
    ) -> None:
        acc = self._mpiio_acc(inode, rank)
        if acc.coll_opens + acc.indep_opens == 0:
            acc.open_start_ts = start
        if collective:
            acc.coll_opens += 1
        else:
            acc.indep_opens += 1
        acc.open_end_ts = max(acc.open_end_ts, end)
        acc.meta_time += end - start

    def mpiio_close(self, inode: Inode, rank: int, start: float, end: float) -> None:
        acc = self._mpiio_acc(inode, rank)
        if acc.close_start_ts == 0.0:
            acc.close_start_ts = start
        acc.close_end_ts = max(acc.close_end_ts, end)
        acc.meta_time += end - start

    def mpiio_sync(self, inode: Inode, rank: int, start: float, end: float) -> None:
        acc = self._mpiio_acc(inode, rank)
        acc.syncs += 1
        acc.meta_time += end - start

    def mpiio_io(
        self,
        inode: Inode,
        rank: int,
        flavor: str,
        operation: str,
        offset: int,
        length: int,
        start: float,
        end: float,
    ) -> None:
        acc = self._mpiio_acc(inode, rank)
        acc.record_io(flavor, operation, offset, length, start, end)
        if self._enable_dxt:
            self._dxt.append(
                DxtSegment(
                    module="X_MPIIO",
                    record_id=inode.file_id,
                    rank=rank,
                    operation=operation,
                    offset=offset,
                    length=length,
                    start_time=start,
                    end_time=end,
                )
            )

    def stdio_open(self, inode: Inode, rank: int, start: float, end: float) -> None:
        acc = self._stdio_acc(inode, rank)
        if acc.opens == 0:
            acc.open_start_ts = start
        acc.opens += 1
        acc.meta_time += end - start

    def stdio_close(self, inode: Inode, rank: int, start: float, end: float) -> None:
        acc = self._stdio_acc(inode, rank)
        acc.close_start_ts = start
        acc.meta_time += end - start

    def stdio_meta(
        self, inode: Inode, rank: int, kind: str, start: float, end: float
    ) -> None:
        acc = self._stdio_acc(inode, rank)
        if kind == "seek":
            acc.seeks += 1
        elif kind == "flush":
            acc.flushes += 1
        else:
            raise ValueError(f"unknown STDIO meta kind {kind!r}")
        acc.meta_time += end - start

    def stdio_io(
        self,
        inode: Inode,
        rank: int,
        operation: str,
        offset: int,
        length: int,
        start: float,
        end: float,
    ) -> None:
        acc = self._stdio_acc(inode, rank)
        phase = acc.read if operation == "read" else acc.write
        phase.add(offset, length, start, end)

    # -- finalization ---------------------------------------------------

    def finalize(self, start_time: float, end_time: float) -> DarshanLog:
        """Emit the finished DarshanLog for the job interval given."""
        job = JobRecord(
            job_id=self._job_id,
            uid=self._uid,
            nprocs=self._nprocs,
            start_time=start_time,
            end_time=end_time,
            executable=self._executable,
            metadata=self._metadata,
        )
        log = DarshanLog(job=job)
        for file_id, path in sorted(self._names.items()):
            log.add_name(NameRecord(record_id=file_id, path=path))
        for (file_id, rank), acc in sorted(self._posix.items()):
            log.add_record(self._finalize_posix(file_id, rank, acc))
        for (file_id, rank), acc in sorted(self._mpiio.items()):
            log.add_record(self._finalize_mpiio(file_id, rank, acc))
        for (file_id, rank), acc in sorted(self._stdio.items()):
            log.add_record(self._finalize_stdio(file_id, rank, acc))
        for file_id, inode in sorted(self._lustre_files.items()):
            log.add_record(self._finalize_lustre(file_id, inode))
        for segment in self._dxt:
            log.add_dxt(segment)
        return log

    def _finalize_posix(
        self, file_id: int, rank: int, acc: _PosixAccumulator
    ) -> ModuleRecord:
        counters: dict[str, int] = {
            "POSIX_OPENS": acc.opens,
            "POSIX_READS": acc.read.ops,
            "POSIX_WRITES": acc.write.ops,
            "POSIX_SEEKS": acc.seeks,
            "POSIX_STATS": acc.stats,
            "POSIX_FSYNCS": acc.fsyncs,
            "POSIX_MODE": 0o644,
            "POSIX_BYTES_READ": acc.read.bytes_moved,
            "POSIX_BYTES_WRITTEN": acc.write.bytes_moved,
            "POSIX_MAX_BYTE_READ": max(acc.read.max_byte, 0),
            "POSIX_MAX_BYTE_WRITTEN": max(acc.write.max_byte, 0),
            "POSIX_CONSEC_READS": acc.read.consec,
            "POSIX_CONSEC_WRITES": acc.write.consec,
            "POSIX_SEQ_READS": acc.read.seq,
            "POSIX_SEQ_WRITES": acc.write.seq,
            "POSIX_RW_SWITCHES": acc.rw_switches,
            "POSIX_MEM_ALIGNMENT": self._fs.config.mem_alignment,
            "POSIX_FILE_ALIGNMENT": self._fs.config.file_alignment,
            "POSIX_MEM_NOT_ALIGNED": acc.mem_not_aligned,
            "POSIX_FILE_NOT_ALIGNED": acc.file_not_aligned,
        }
        for label, count in zip(SIZE_BIN_LABELS, acc.read.bins):
            counters[f"POSIX_SIZE_READ_{label}"] = count
        for label, count in zip(SIZE_BIN_LABELS, acc.write.bins):
            counters[f"POSIX_SIZE_WRITE_{label}"] = count
        for slot, (value, count) in enumerate(acc.accesses.top(4), start=1):
            counters[f"POSIX_ACCESS{slot}_ACCESS"] = value
            counters[f"POSIX_ACCESS{slot}_COUNT"] = count
        counters["POSIX_FASTEST_RANK"] = rank
        counters["POSIX_SLOWEST_RANK"] = rank
        moved = acc.read.bytes_moved + acc.write.bytes_moved
        counters["POSIX_FASTEST_RANK_BYTES"] = moved
        counters["POSIX_SLOWEST_RANK_BYTES"] = moved
        rank_time = acc.read.total_time + acc.write.total_time + acc.meta_time
        fcounters: dict[str, float] = {
            "POSIX_F_OPEN_START_TIMESTAMP": acc.open_start_ts,
            "POSIX_F_READ_START_TIMESTAMP": acc.read.start_ts,
            "POSIX_F_WRITE_START_TIMESTAMP": acc.write.start_ts,
            "POSIX_F_CLOSE_START_TIMESTAMP": acc.close_start_ts,
            "POSIX_F_OPEN_END_TIMESTAMP": acc.open_end_ts,
            "POSIX_F_READ_END_TIMESTAMP": acc.read.end_ts,
            "POSIX_F_WRITE_END_TIMESTAMP": acc.write.end_ts,
            "POSIX_F_CLOSE_END_TIMESTAMP": acc.close_end_ts,
            "POSIX_F_READ_TIME": acc.read.total_time,
            "POSIX_F_WRITE_TIME": acc.write.total_time,
            "POSIX_F_META_TIME": acc.meta_time,
            "POSIX_F_MAX_READ_TIME": acc.read.max_time,
            "POSIX_F_MAX_WRITE_TIME": acc.write.max_time,
            "POSIX_F_FASTEST_RANK_TIME": rank_time,
            "POSIX_F_SLOWEST_RANK_TIME": rank_time,
        }
        return ModuleRecord(
            module="POSIX",
            record_id=file_id,
            rank=rank,
            counters=counters,
            fcounters=fcounters,
        )

    def _finalize_mpiio(
        self, file_id: int, rank: int, acc: _MpiioAccumulator
    ) -> ModuleRecord:
        counters: dict[str, int] = {
            "MPIIO_INDEP_OPENS": acc.indep_opens,
            "MPIIO_COLL_OPENS": acc.coll_opens,
            "MPIIO_INDEP_READS": acc.indep["read"],
            "MPIIO_INDEP_WRITES": acc.indep["write"],
            "MPIIO_COLL_READS": acc.coll["read"],
            "MPIIO_COLL_WRITES": acc.coll["write"],
            "MPIIO_SPLIT_READS": acc.split["read"],
            "MPIIO_SPLIT_WRITES": acc.split["write"],
            "MPIIO_NB_READS": acc.nb["read"],
            "MPIIO_NB_WRITES": acc.nb["write"],
            "MPIIO_SYNCS": acc.syncs,
            "MPIIO_MODE": 0,
            "MPIIO_BYTES_READ": acc.read.bytes_moved,
            "MPIIO_BYTES_WRITTEN": acc.write.bytes_moved,
            "MPIIO_RW_SWITCHES": acc.rw_switches,
        }
        for label, count in zip(SIZE_BIN_LABELS, acc.read.bins):
            counters[f"MPIIO_SIZE_READ_AGG_{label}"] = count
        for label, count in zip(SIZE_BIN_LABELS, acc.write.bins):
            counters[f"MPIIO_SIZE_WRITE_AGG_{label}"] = count
        for slot, (value, count) in enumerate(acc.accesses.top(4), start=1):
            counters[f"MPIIO_ACCESS{slot}_ACCESS"] = value
            counters[f"MPIIO_ACCESS{slot}_COUNT"] = count
        counters["MPIIO_FASTEST_RANK"] = rank
        counters["MPIIO_SLOWEST_RANK"] = rank
        moved = acc.read.bytes_moved + acc.write.bytes_moved
        counters["MPIIO_FASTEST_RANK_BYTES"] = moved
        counters["MPIIO_SLOWEST_RANK_BYTES"] = moved
        rank_time = acc.read.total_time + acc.write.total_time + acc.meta_time
        fcounters: dict[str, float] = {
            "MPIIO_F_OPEN_START_TIMESTAMP": acc.open_start_ts,
            "MPIIO_F_READ_START_TIMESTAMP": acc.read.start_ts,
            "MPIIO_F_WRITE_START_TIMESTAMP": acc.write.start_ts,
            "MPIIO_F_CLOSE_START_TIMESTAMP": acc.close_start_ts,
            "MPIIO_F_OPEN_END_TIMESTAMP": acc.open_end_ts,
            "MPIIO_F_READ_END_TIMESTAMP": acc.read.end_ts,
            "MPIIO_F_WRITE_END_TIMESTAMP": acc.write.end_ts,
            "MPIIO_F_CLOSE_END_TIMESTAMP": acc.close_end_ts,
            "MPIIO_F_READ_TIME": acc.read.total_time,
            "MPIIO_F_WRITE_TIME": acc.write.total_time,
            "MPIIO_F_META_TIME": acc.meta_time,
            "MPIIO_F_MAX_READ_TIME": acc.read.max_time,
            "MPIIO_F_MAX_WRITE_TIME": acc.write.max_time,
            "MPIIO_F_FASTEST_RANK_TIME": rank_time,
            "MPIIO_F_SLOWEST_RANK_TIME": rank_time,
        }
        return ModuleRecord(
            module="MPI-IO",
            record_id=file_id,
            rank=rank,
            counters=counters,
            fcounters=fcounters,
        )

    def _finalize_stdio(
        self, file_id: int, rank: int, acc: _StdioAccumulator
    ) -> ModuleRecord:
        moved = acc.read.bytes_moved + acc.write.bytes_moved
        counters: dict[str, int] = {
            "STDIO_OPENS": acc.opens,
            "STDIO_READS": acc.read.ops,
            "STDIO_WRITES": acc.write.ops,
            "STDIO_SEEKS": acc.seeks,
            "STDIO_FLUSHES": acc.flushes,
            "STDIO_BYTES_READ": acc.read.bytes_moved,
            "STDIO_BYTES_WRITTEN": acc.write.bytes_moved,
            "STDIO_MAX_BYTE_READ": max(acc.read.max_byte, 0),
            "STDIO_MAX_BYTE_WRITTEN": max(acc.write.max_byte, 0),
            "STDIO_FASTEST_RANK": rank,
            "STDIO_FASTEST_RANK_BYTES": moved,
            "STDIO_SLOWEST_RANK": rank,
            "STDIO_SLOWEST_RANK_BYTES": moved,
        }
        rank_time = acc.read.total_time + acc.write.total_time + acc.meta_time
        fcounters: dict[str, float] = {
            "STDIO_F_OPEN_START_TIMESTAMP": acc.open_start_ts,
            "STDIO_F_CLOSE_START_TIMESTAMP": acc.close_start_ts,
            "STDIO_F_READ_TIME": acc.read.total_time,
            "STDIO_F_WRITE_TIME": acc.write.total_time,
            "STDIO_F_META_TIME": acc.meta_time,
            "STDIO_F_FASTEST_RANK_TIME": rank_time,
            "STDIO_F_SLOWEST_RANK_TIME": rank_time,
        }
        return ModuleRecord(
            module="STDIO",
            record_id=file_id,
            rank=rank,
            counters=counters,
            fcounters=fcounters,
        )

    def _finalize_lustre(self, file_id: int, inode: Inode) -> ModuleRecord:
        layout = inode.layout
        counters: dict[str, int] = {
            "LUSTRE_OSTS": self._fs.osts.count,
            "LUSTRE_MDTS": 1,
            "LUSTRE_STRIPE_OFFSET": layout.ost_ids[0],
            "LUSTRE_STRIPE_SIZE": layout.stripe_size,
            "LUSTRE_STRIPE_WIDTH": layout.stripe_count,
        }
        for slot in range(LUSTRE_MAX_OSTS):
            if slot < layout.stripe_count:
                counters[f"LUSTRE_OST_ID_{slot}"] = layout.ost_ids[slot]
        return ModuleRecord(
            module="LUSTRE", record_id=file_id, rank=0, counters=counters
        )
