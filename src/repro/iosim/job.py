"""The simulated MPI job: rank clocks, barriers, and layer factories.

A :class:`SimulatedJob` owns one Lustre filesystem, one Darshan
runtime, and a wall clock per rank.  Workloads obtain per-rank POSIX or
STDIO layers (or the communicator-wide MPI-IO layer) from it, drive
them in SPMD style, and call :meth:`finalize` to obtain the trace.
"""

from __future__ import annotations

from repro.iosim.runtime import DarshanRuntime
from repro.lustre.filesystem import LustreConfig, LustreFilesystem
from repro.util.errors import SimulationError


class SimulatedJob:
    """One parallel application run against the simulated I/O stack."""

    def __init__(
        self,
        nprocs: int,
        fs: LustreFilesystem | None = None,
        job_id: int = 4000001,
        executable: str = "simulated_app",
        enable_dxt: bool = True,
        metadata: dict[str, str] | None = None,
    ) -> None:
        if nprocs <= 0:
            raise SimulationError(f"nprocs must be positive, got {nprocs}")
        self.nprocs = nprocs
        self.fs = fs or LustreFilesystem(LustreConfig())
        self.runtime = DarshanRuntime(
            fs=self.fs,
            nprocs=nprocs,
            job_id=job_id,
            executable=executable,
            enable_dxt=enable_dxt,
            metadata=metadata,
        )
        self.clocks = [0.0] * nprocs
        self._finalized = False
        # Layers are created lazily and cached so MPI-IO can reuse the
        # same POSIX layer (and its fd table) as direct POSIX callers.
        self._posix_layers: dict[int, object] = {}
        self._stdio_layers: dict[int, object] = {}

    # -- clock management ----------------------------------------------

    def now(self, rank: int) -> float:
        """Current wall-clock time of one rank."""
        return self.clocks[rank]

    def advance(self, rank: int, until: float) -> None:
        """Move one rank's clock forward (never backward)."""
        if until < self.clocks[rank] - 1e-12:
            raise SimulationError(
                f"clock for rank {rank} would move backward "
                f"({self.clocks[rank]} -> {until})"
            )
        self.clocks[rank] = max(self.clocks[rank], until)

    def compute(self, rank: int, seconds: float) -> None:
        """Model non-I/O computation on one rank."""
        if seconds < 0:
            raise SimulationError("compute time must be non-negative")
        self.clocks[rank] += seconds

    def barrier(self, ranks: list[int] | None = None) -> float:
        """Synchronize ranks to the latest clock among them."""
        members = ranks if ranks is not None else range(self.nprocs)
        latest = max(self.clocks[rank] for rank in members)
        for rank in members:
            self.clocks[rank] = latest
        return latest

    # -- layer factories -------------------------------------------------

    def posix(self, rank: int):
        """Per-rank POSIX layer (cached)."""
        from repro.iosim.posix import PosixLayer

        if rank not in self._posix_layers:
            self._posix_layers[rank] = PosixLayer(self, rank)
        return self._posix_layers[rank]

    def stdio(self, rank: int):
        """Per-rank STDIO layer (cached)."""
        from repro.iosim.stdio import StdioLayer

        if rank not in self._stdio_layers:
            self._stdio_layers[rank] = StdioLayer(self, rank)
        return self._stdio_layers[rank]

    def mpiio(self, **kwargs):
        """Communicator-wide MPI-IO layer (a new one per call)."""
        from repro.iosim.mpiio import MpiIoLayer

        return MpiIoLayer(self, **kwargs)

    # -- trace emission ---------------------------------------------------

    def finalize(self):
        """Close out the job and emit its DarshanLog (idempotent guard)."""
        if self._finalized:
            raise SimulationError("job already finalized")
        self._finalized = True
        end_time = max(self.clocks) if self.clocks else 0.0
        return self.runtime.finalize(start_time=0.0, end_time=end_time)
