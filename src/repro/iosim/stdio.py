"""Per-rank STDIO layer: buffered ``fopen``/``fread``/``fwrite``.

The STDIO module matters to the diagnosis pipeline mainly as a signal
("the application is using buffered stdio instead of parallel I/O"), so
the model is simple: a per-stream write-back buffer that coalesces
small sequential accesses into buffer-size filesystem operations, which
is what libc actually buys you.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.iosim.job import SimulatedJob
from repro.lustre.filesystem import Inode
from repro.util.errors import FilesystemError
from repro.util.units import KIB


@dataclass
class _Stream:
    inode: Inode
    position: int = 0
    buffer_start: int = 0
    buffered: int = 0
    buffer_size: int = 4 * KIB
    dirty: bool = field(default=False)


class StdioLayer:
    """Buffered stdio streams for one rank."""

    def __init__(self, job: SimulatedJob, rank: int, buffer_size: int = 4 * KIB) -> None:
        self.job = job
        self.rank = rank
        self._buffer_size = buffer_size
        self._streams: dict[int, _Stream] = {}
        self._next_handle = 1

    def fopen(self, path: str, create: bool = True) -> int:
        """Open a buffered stream; returns the stream handle."""
        start = self.job.now(self.rank)
        inode, completion = self.job.fs.open(path, start, create=create)
        self.job.advance(self.rank, completion)
        self.job.runtime.stdio_open(inode, self.rank, start, completion)
        handle = self._next_handle
        self._next_handle += 1
        self._streams[handle] = _Stream(inode=inode, buffer_size=self._buffer_size)
        return handle

    def fwrite(self, handle: int, length: int) -> int:
        """Buffered write at the stream cursor."""
        stream = self._lookup(handle)
        start = self.job.now(self.rank)
        appending = stream.position == stream.buffer_start + stream.buffered
        if stream.dirty and not appending:
            self._flush(stream)
        if not stream.dirty:
            stream.buffer_start = stream.position
            stream.buffered = 0
            stream.dirty = True
        stream.buffered += length
        self.job.runtime.stdio_io(
            stream.inode, self.rank, "write", stream.position, length,
            start, self.job.now(self.rank),
        )
        stream.position += length
        if stream.buffered >= stream.buffer_size:
            self._flush(stream)
        return length

    def fread(self, handle: int, length: int) -> int:
        """Read at the stream cursor (readahead of one buffer)."""
        stream = self._lookup(handle)
        self._flush(stream)
        start = self.job.now(self.rank)
        span = max(length, stream.buffer_size)
        span = min(span, max(stream.inode.size - stream.position, 0))
        if span:
            result = self.job.fs.io(
                stream.inode, self.rank, "read", stream.position, span, start
            )
            self.job.advance(self.rank, result.completion)
        self.job.runtime.stdio_io(
            stream.inode, self.rank, "read", stream.position, length,
            start, self.job.now(self.rank),
        )
        stream.position += length
        return length

    def fseek(self, handle: int, offset: int) -> None:
        """Reposition the stream (flushes the write buffer)."""
        stream = self._lookup(handle)
        self._flush(stream)
        start = self.job.now(self.rank)
        completion = start + self.job.fs.config.costs.client_op_overhead
        self.job.advance(self.rank, completion)
        self.job.runtime.stdio_meta(stream.inode, self.rank, "seek", start, completion)
        stream.position = offset

    def fflush(self, handle: int) -> None:
        """Flush the stream's write buffer to the filesystem."""
        stream = self._lookup(handle)
        start = self.job.now(self.rank)
        self._flush(stream)
        self.job.runtime.stdio_meta(
            stream.inode, self.rank, "flush", start, self.job.now(self.rank)
        )

    def fclose(self, handle: int) -> None:
        """Flush and close the stream."""
        stream = self._lookup(handle)
        self._flush(stream)
        start = self.job.now(self.rank)
        completion = self.job.fs.close(stream.inode, start)
        self.job.advance(self.rank, completion)
        self.job.runtime.stdio_close(stream.inode, self.rank, start, completion)
        del self._streams[handle]

    def _flush(self, stream: _Stream) -> None:
        if not stream.dirty or stream.buffered == 0:
            stream.dirty = False
            return
        start = self.job.now(self.rank)
        result = self.job.fs.io(
            stream.inode, self.rank, "write", stream.buffer_start, stream.buffered, start
        )
        self.job.advance(self.rank, result.completion)
        stream.dirty = False
        stream.buffered = 0

    def _lookup(self, handle: int) -> _Stream:
        try:
            return self._streams[handle]
        except KeyError:
            raise FilesystemError(f"bad stream handle {handle}") from None
